//! Rule checks over the token stream (and structural index) of one file.

use crate::lexer::{lex, parse_escapes, Heat, Tok, TokKind};
use crate::parse::{analyze, is_wildcard_pattern, standalone_extent, FnSpan};

/// Crates whose behavior feeds the deterministic simulation; D1/D2/S1
/// apply only here.
pub const SIM_CRITICAL: &[&str] = &[
    "netsim",
    "core",
    "dataplane",
    "wire",
    "transport",
    "telemetry",
];

/// Crates whose outputs feed the byte-identical digest gates; F1 bans
/// float arithmetic/formatting here. Telemetry is deliberately absent:
/// its quantile code carries audited escapes instead.
pub const DIGEST_CRITICAL: &[&str] = &["core", "netsim", "wire", "dataplane", "transport"];

/// Modules where every function is allocation-checked (A1) by default;
/// opt out per function with `// mmt-lint: cold`. Matched by path
/// suffix.
pub const HOT_MODULES: &[&str] = &[
    "netsim/src/wheel.rs",
    "netsim/src/arena.rs",
    "wire/src/mmt/repr.rs",
    "netsim/src/shard.rs",
];

/// Every rule id an escape may name.
pub const KNOWN_RULES: &[&str] = &["D1", "D2", "P1", "U1", "S1", "ESC", "F1", "A1", "W1", "E1"];

/// How a file is classified for rule scoping.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Workspace crate the file belongs to (`core`, `netsim`, `mmt`, ...).
    pub crate_name: String,
    /// True when the crate is in [`SIM_CRITICAL`].
    pub sim_critical: bool,
    /// True for test/bench/example code (path-based).
    pub is_test: bool,
    /// True for binary entry points (`src/main.rs`, `src/bin/*`).
    pub is_bin: bool,
    /// True for crate roots, which must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// True for the sim-clock / seeded-RNG modules that D2 exempts.
    pub d2_exempt: bool,
    /// True when the crate is in [`DIGEST_CRITICAL`] (F1 applies).
    pub digest_critical: bool,
    /// True for files in [`HOT_MODULES`] (A1 applies to every function
    /// not marked `// mmt-lint: cold`).
    pub hot_module: bool,
}

/// Classify a file by its (normalized, `/`-separated) path. When
/// `assume_crate` is set, the crate name is forced and the path-based
/// test/bin exemptions are bypassed (fixture files live under `tests/`
/// but must lint as library code); `#[cfg(test)]` regions are still
/// honored.
pub fn classify(path: &str, assume_crate: Option<&str>) -> FileClass {
    let norm = path.replace('\\', "/");
    let crate_name = match assume_crate {
        Some(n) => n.to_string(),
        None => crate_from_path(&norm),
    };
    let forced = assume_crate.is_some();
    let is_test = !forced
        && (norm.contains("/tests/")
            || norm.starts_with("tests/")
            || norm.contains("/benches/")
            || norm.contains("/examples/"));
    let is_bin = !forced && (norm.contains("src/bin/") || norm.ends_with("src/main.rs"));
    let is_crate_root =
        norm.ends_with("src/lib.rs") || norm.ends_with("src/main.rs") || norm.contains("src/bin/");
    let d2_exempt = norm.ends_with("src/rng.rs") || norm.ends_with("src/time.rs");
    let hot_module = HOT_MODULES.iter().any(|m| norm.ends_with(m));
    FileClass {
        sim_critical: SIM_CRITICAL.contains(&crate_name.as_str()),
        digest_critical: DIGEST_CRITICAL.contains(&crate_name.as_str()),
        crate_name,
        is_test,
        is_bin,
        is_crate_root,
        d2_exempt,
        hot_module,
    }
}

fn crate_from_path(norm: &str) -> String {
    if let Some(idx) = norm.find("crates/") {
        let rest = norm.get(idx + "crates/".len()..).unwrap_or("");
        if let Some(end) = rest.find('/') {
            return rest.get(..end).unwrap_or("").to_string();
        }
    }
    // Root facade package (`src/`, `tests/`, `src/bin/mmt-sim.rs`).
    "mmt".to_string()
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Display path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (`D1`, `D2`, `P1`, `U1`, `S1`, `ESC`, `F1`, `A1`, `W1`,
    /// `E1`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Compute `(start_line, end_line)` regions covered by a `#[test]` /
/// `#[cfg(test)]`-gated item (function or `mod tests { ... }` body).
pub fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_attr_start(toks, i) {
            i += 1;
            continue;
        }
        let start_line = toks.get(i).map(|t| t.line).unwrap_or(1);
        let (after, idents) = consume_attr(toks, i);
        let is_test_attr = idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not");
        if !is_test_attr {
            i = after;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = after;
        while is_attr_start(toks, j) {
            let (next, _) = consume_attr(toks, j);
            j = next;
        }
        let end_line = item_end_line(toks, j);
        regions.push((start_line, end_line));
        i = j;
    }
    regions
}

fn is_attr_start(toks: &[Tok], i: usize) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct('#'))
        && (matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('['))
            || (matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('!'))
                && matches!(toks.get(i + 2), Some(t) if t.kind == TokKind::Punct('['))))
}

/// Consume an attribute starting at `i`; returns (index past `]`,
/// idents seen inside).
fn consume_attr(toks: &[Tok], i: usize) -> (usize, Vec<String>) {
    let mut j = i;
    // Skip '#' and optional '!'.
    while matches!(
        toks.get(j),
        Some(t) if matches!(t.kind, TokKind::Punct('#') | TokKind::Punct('!'))
    ) {
        j += 1;
    }
    let mut idents = Vec::new();
    if !matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct('[')) {
        return (j, idents);
    }
    let mut depth = 0i32;
    while let Some(t) = toks.get(j) {
        match &t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, idents);
                }
            }
            TokKind::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    (j, idents)
}

/// Line on which the item starting at token `i` ends: the matching `}`
/// of its first depth-0 brace, or a depth-0 `;`, or the last token.
fn item_end_line(toks: &[Tok], i: usize) -> u32 {
    let mut depth = 0i32;
    let mut j = i;
    let mut in_body = false;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                if t.kind == TokKind::Punct('{') && depth == 0 {
                    in_body = true;
                }
                depth += 1;
            }
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                depth -= 1;
                if in_body && depth == 0 {
                    return t.line;
                }
            }
            TokKind::Punct(';') if depth == 0 => return t.line,
            _ => {}
        }
        j += 1;
    }
    toks.last().map(|t| t.line).unwrap_or(1)
}

/// Result of checking one file: the kept diagnostics plus the number of
/// valid escapes present (feeds the scan-level escape budget).
#[derive(Debug, Default)]
pub struct FileCheck {
    /// Escape-filtered, line-ordered violations.
    pub violations: Vec<Violation>,
    /// Number of well-formed `allow(...)` escapes in the file.
    pub escapes: usize,
}

/// Run every rule over one file's source; returns escape-filtered,
/// line-ordered violations.
pub fn check_file(display_path: &str, class: &FileClass, src: &str) -> Vec<Violation> {
    check_file_full(display_path, class, src).violations
}

/// Run every rule over one file's source, also reporting the escape
/// count.
pub fn check_file_full(display_path: &str, class: &FileClass, src: &str) -> FileCheck {
    let lexed = lex(src);
    let escapes = parse_escapes(&lexed.comments);
    let structure = analyze(&lexed.toks, &escapes.markers);
    let regions = test_regions(&lexed.toks);
    let in_test =
        |line: u32| class.is_test || regions.iter().any(|(a, b)| line >= *a && line <= *b);

    // Token-aware escape coverage: a trailing escape covers its own
    // line; a standalone escape also covers the full extent of the
    // statement starting on the next line (rustfmt-rewrap safe).
    let coverage: Vec<(u32, u32)> = escapes
        .valid
        .iter()
        .map(|e| {
            if e.standalone {
                (
                    e.line,
                    standalone_extent(&lexed.toks, &structure.pair, e.line),
                )
            } else {
                (e.line, e.line)
            }
        })
        .collect();

    let mut raw: Vec<Violation> = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        raw.push(Violation {
            path: display_path.to_string(),
            line,
            rule,
            message,
        });
    };

    // ESC: malformed escape comments are always reported.
    for &line in &escapes.malformed {
        push(
            "ESC",
            line,
            "malformed escape; use `// mmt-lint: allow(RULE, \"justification\")`".to_string(),
        );
    }
    // ESC: a heat marker must sit on or above a function.
    for &line in &structure.unbound_markers {
        push(
            "ESC",
            line,
            "heat marker is not attached to a function".to_string(),
        );
    }

    // U1: crate roots must forbid unsafe code.
    if class.is_crate_root && !has_forbid_unsafe(&lexed.toks) {
        push(
            "U1",
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    let lib_code = !class.is_test && !class.is_bin;
    let toks = &lexed.toks;
    let fn_is_hot = |f: &FnSpan| match f.heat {
        Some(Heat::Hot) => true,
        Some(Heat::Cold) => false,
        None => class.hot_module,
    };
    for (i, t) in toks.iter().enumerate() {
        let f1_scope = class.digest_critical && lib_code && !in_test(t.line);
        // F1 — float literals and float format specs.
        match &t.kind {
            TokKind::Float if f1_scope => {
                push(
                    "F1",
                    t.line,
                    "float literal in digest-critical crate; use integer (ppm/fixed-point) arithmetic"
                        .to_string(),
                );
            }
            TokKind::Str(body) if f1_scope => {
                if let Some(spec) = float_format_spec(body) {
                    push(
                        "F1",
                        t.line,
                        format!("float format spec `{{:{spec}}}` in digest-critical crate; format integers instead"),
                    );
                }
            }
            _ => {}
        }
        let TokKind::Ident(id) = &t.kind else {
            continue;
        };
        // F1 — `as f64`/`as f32` feeding arithmetic, and libm-backed
        // methods whose results vary across platforms.
        if f1_scope {
            if id == "as"
                && matches!(toks.get(i + 1), Some(t) if matches!(&t.kind, TokKind::Ident(s) if s == "f64" || s == "f32"))
                && cast_in_arithmetic(toks, &structure.pair, i)
            {
                push(
                    "F1",
                    t.line,
                    "float arithmetic on an `as f64`/`as f32` cast in digest-critical crate; compute in integers"
                        .to_string(),
                );
            }
            if is_libm_method(id)
                && matches!(toks.get(i.wrapping_sub(1)), Some(t) if t.kind == TokKind::Punct('.'))
                && i > 0
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('('))
            {
                push(
                    "F1",
                    t.line,
                    format!(
                        "`.{id}()` is libm-backed and varies across platforms; not digest-safe"
                    ),
                );
            }
        }
        // A1 — allocation inside hot functions.
        if lib_code && !in_test(t.line) {
            if let Some(fi) = structure.innermost_fn(i) {
                if fn_is_hot(&structure.fns[fi]) {
                    if let Some(what) = allocation_at(toks, i, id) {
                        push(
                            "A1",
                            t.line,
                            format!(
                                "`{what}` allocates in hot function `{}`; preallocate, pool, or mark it `// mmt-lint: cold`",
                                structure.fns[fi].name
                            ),
                        );
                    }
                }
            }
        }
        // D1 — nondeterministic-iteration collections in sim-critical crates.
        if class.sim_critical
            && lib_code
            && !in_test(t.line)
            && (id == "HashMap" || id == "HashSet")
        {
            let alt = if id == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            push(
                "D1",
                t.line,
                format!("`{id}` has nondeterministic iteration order; use `{alt}`"),
            );
        }
        // D2 — ambient nondeterminism outside the sim clock / seeded RNG.
        // Clocks, environment, sockets, and threads all smuggle the host
        // into sim-critical code; the real I/O plane lives in `mmt-io`,
        // the one crate where they belong.
        if class.sim_critical && lib_code && !class.d2_exempt && !in_test(t.line) {
            if id == "Instant" || id == "SystemTime" {
                push(
                    "D2",
                    t.line,
                    format!("`{id}` reads wall-clock time; use the sim clock"),
                );
            }
            if id == "UdpSocket" || id == "TcpStream" || id == "TcpListener" {
                push(
                    "D2",
                    t.line,
                    format!("`{id}` does real I/O; sim-critical code must stay sans-io (sockets live in mmt-io)"),
                );
            }
            if id == "std"
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct(':'))
                && matches!(toks.get(i + 2), Some(t) if t.kind == TokKind::Punct(':'))
            {
                if let Some(TokKind::Ident(seg)) = toks.get(i + 3).map(|t| &t.kind) {
                    match seg.as_str() {
                        "env" => push(
                            "D2",
                            t.line,
                            "`std::env` makes behavior environment-dependent; plumb config explicitly"
                                .to_string(),
                        ),
                        "net" => push(
                            "D2",
                            t.line,
                            "`std::net` does real I/O; sim-critical code must stay sans-io (sockets live in mmt-io)"
                                .to_string(),
                        ),
                        "thread" => push(
                            "D2",
                            t.line,
                            "`std::thread` introduces host scheduling; sim-critical code must stay single-threaded (threads live in mmt-io or behind an escape)"
                                .to_string(),
                        ),
                        _ => {}
                    }
                }
            }
        }
        // P1 — panics in non-test library code.
        if lib_code && !in_test(t.line) {
            let called = (id == "unwrap" || id == "expect")
                && matches!(toks.get(i.wrapping_sub(1)), Some(t) if t.kind == TokKind::Punct('.'))
                && i > 0
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('('));
            if called {
                push(
                    "P1",
                    t.line,
                    format!("`{id}()` can panic; return a typed error or justify with an escape"),
                );
            }
            let macro_panic = matches!(id.as_str(), "panic" | "unimplemented" | "todo")
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('!'));
            if macro_panic {
                push(
                    "P1",
                    t.line,
                    format!(
                        "`{id}!` in library code; return a typed error or justify with an escape"
                    ),
                );
            }
        }
        // S1 — bare arithmetic on sequence numbers.
        if class.sim_critical && lib_code && !in_test(t.line) && seq_like(id) {
            if let Some(next) = toks.get(i + 1) {
                let minus_arrow = next.kind == TokKind::Punct('-')
                    && matches!(toks.get(i + 2), Some(t) if t.kind == TokKind::Punct('>'));
                if matches!(next.kind, TokKind::Punct('+') | TokKind::Punct('-')) && !minus_arrow {
                    push(
                        "S1",
                        t.line,
                        format!(
                            "bare arithmetic on sequence number `{id}`; use wrapping_/saturating_ helpers"
                        ),
                    );
                }
            }
        }
    }

    // W1 — matches over the wire control discriminant must be
    // wildcard-free.
    if lib_code {
        for m in &structure.matches {
            if in_test(toks[m.match_tok].line) {
                continue;
            }
            let relevant = toks[m.match_tok..=m.body_close].iter().any(
                |t| matches!(&t.kind, TokKind::Ident(s) if s == "ControlRepr" || s == "ControlType"),
            );
            if !relevant {
                continue;
            }
            for arm in &m.arms {
                if is_wildcard_pattern(toks, arm.pat) {
                    push(
                        "W1",
                        arm.line,
                        "wildcard arm in `match` over the wire control discriminant; enumerate every message type"
                            .to_string(),
                    );
                }
            }
        }
    }

    // Suppression pass: a violation is dropped when a same-rule escape
    // covers its line; every matching escape is marked used (E1 input).
    // ESC violations are never suppressible.
    let mut used = vec![false; escapes.valid.len()];
    let mut out: Vec<Violation> = Vec::new();
    for v in raw {
        let mut matched = false;
        for (ei, e) in escapes.valid.iter().enumerate() {
            if e.rule == v.rule && coverage[ei].0 <= v.line && v.line <= coverage[ei].1 {
                used[ei] = true;
                matched = true;
            }
        }
        if v.rule == "ESC" || !matched {
            out.push(v);
        }
    }

    // E1 — stale-escape audit: an escape that suppressed nothing (or
    // names an unknown rule) is itself a violation. `allow(E1)` escapes
    // are exempt from the staleness check (no meta-recursion) but still
    // suppress E1 findings on their coverage. An escape whose rule is
    // scoped out of this crate entirely (an F1 escape outside the
    // digest-critical set, say) is inert, not stale: the same file may
    // be linted under several crate classes.
    let rule_in_scope = |rule: &str| match rule {
        "F1" => class.digest_critical,
        "D1" | "D2" | "S1" => class.sim_critical,
        _ => true,
    };
    let mut e1_raw: Vec<Violation> = Vec::new();
    for (ei, e) in escapes.valid.iter().enumerate() {
        if e.rule == "E1" {
            continue;
        }
        if !rule_in_scope(&e.rule) {
            continue;
        }
        if !KNOWN_RULES.contains(&e.rule.as_str()) {
            e1_raw.push(Violation {
                path: display_path.to_string(),
                line: e.line,
                rule: "E1",
                message: format!("escape names unknown rule `{}`", e.rule),
            });
        } else if !used[ei] {
            e1_raw.push(Violation {
                path: display_path.to_string(),
                line: e.line,
                rule: "E1",
                message: format!(
                    "stale escape: no {} violation fires within its coverage; delete it",
                    e.rule
                ),
            });
        }
    }
    for v in e1_raw {
        let suppressed =
            escapes.valid.iter().enumerate().any(|(ei, e)| {
                e.rule == "E1" && coverage[ei].0 <= v.line && v.line <= coverage[ei].1
            });
        if !suppressed {
            out.push(v);
        }
    }

    out.sort();
    out.dedup();
    FileCheck {
        violations: out,
        escapes: escapes.valid.len(),
    }
}

/// Format-spec scanner: returns the spec of the first `{...:spec}`
/// placeholder requesting float formatting (a precision `.N` or
/// scientific `e`/`E`).
fn float_format_spec(s: &str) -> Option<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '{' {
            i += 1;
            continue;
        }
        if chars.get(i + 1) == Some(&'{') {
            i += 2; // escaped literal brace
            continue;
        }
        let mut j = i + 1;
        while j < chars.len() && chars[j] != '}' {
            j += 1;
        }
        if j >= chars.len() {
            break;
        }
        let inner: String = chars[i + 1..j].iter().collect();
        if let Some(colon) = inner.find(':') {
            let spec = &inner[colon + 1..];
            if spec.contains('.') || spec.ends_with('e') || spec.ends_with('E') {
                return Some(spec.to_string());
            }
        }
        i = j + 1;
    }
    None
}

/// Methods whose float results come from libm and are not bit-exact
/// across platforms. `sqrt`, `floor`, `ceil`, `round`, `trunc`, `abs`
/// are IEEE-exact and deliberately absent.
fn is_libm_method(id: &str) -> bool {
    matches!(
        id,
        "ln" | "log"
            | "log2"
            | "log10"
            | "ln_1p"
            | "exp"
            | "exp2"
            | "exp_m1"
            | "powf"
            | "powi"
            | "sin"
            | "cos"
            | "tan"
            | "asin"
            | "acos"
            | "atan"
            | "atan2"
            | "sinh"
            | "cosh"
            | "tanh"
            | "asinh"
            | "acosh"
            | "atanh"
            | "cbrt"
            | "hypot"
    )
}

/// True when the `as f64`/`as f32` cast at token `i_as` feeds (or is
/// fed by) arithmetic: the token after the target type, or the token
/// before the cast operand's start, is `+ - * / %`.
fn cast_in_arithmetic(toks: &[Tok], pair: &[usize], i_as: usize) -> bool {
    let arith = |t: Option<&Tok>| {
        matches!(
            t.map(|t| &t.kind),
            Some(
                TokKind::Punct('+')
                    | TokKind::Punct('-')
                    | TokKind::Punct('*')
                    | TokKind::Punct('/')
                    | TokKind::Punct('%')
            )
        )
    };
    if arith(toks.get(i_as + 2)) {
        return true;
    }
    let start = cast_operand_start(toks, pair, i_as);
    start > 0 && arith(toks.get(start - 1))
}

/// Walk backwards from the `as` keyword over the cast's operand — a
/// postfix chain of idents, literals, `.` field/method accesses, calls,
/// and parenthesized groups — returning the operand's first token index.
fn cast_operand_start(toks: &[Tok], pair: &[usize], i_as: usize) -> usize {
    let mut j = i_as;
    loop {
        if j == 0 {
            return 0;
        }
        match &toks[j - 1].kind {
            TokKind::Punct(')') | TokKind::Punct(']') => {
                let open = pair[j - 1];
                if open == crate::parse::UNMATCHED {
                    return j - 1;
                }
                j = open;
                // A call or index: absorb the callee name.
                if j > 0 && matches!(&toks[j - 1].kind, TokKind::Ident(_)) {
                    j -= 1;
                }
                if j > 0 && toks[j - 1].kind == TokKind::Punct('.') {
                    j -= 1;
                    continue;
                }
                return j;
            }
            TokKind::Ident(_) | TokKind::Num | TokKind::Float => {
                j -= 1;
                if j > 0 && toks[j - 1].kind == TokKind::Punct('.') {
                    j -= 1;
                    continue;
                }
                return j;
            }
            _ => return j,
        }
    }
}

/// If the identifier at token `i` is an allocating call in A1's list,
/// return its display form.
fn allocation_at(toks: &[Tok], i: usize, id: &str) -> Option<String> {
    let next_is =
        |k: char, off: usize| matches!(toks.get(i + off), Some(t) if t.kind == TokKind::Punct(k));
    // Vec::new / Vec::with_capacity / String::new / String::from /
    // String::with_capacity / Box::new
    if matches!(id, "Vec" | "String" | "Box") && next_is(':', 1) && next_is(':', 2) {
        if let Some(Tok {
            kind: TokKind::Ident(m),
            ..
        }) = toks.get(i + 3)
        {
            let flagged = match id {
                "Vec" => matches!(m.as_str(), "new" | "with_capacity"),
                "String" => matches!(m.as_str(), "new" | "from" | "with_capacity"),
                "Box" => m == "new",
                _ => false,
            };
            if flagged {
                return Some(format!("{id}::{m}"));
            }
        }
    }
    // vec! / format!
    if matches!(id, "vec" | "format") && next_is('!', 1) {
        return Some(format!("{id}!"));
    }
    // .to_vec() / .to_string() / .to_owned() / .clone()
    if matches!(id, "to_vec" | "to_string" | "to_owned" | "clone")
        && i > 0
        && matches!(toks.get(i - 1), Some(t) if t.kind == TokKind::Punct('.'))
        && next_is('(', 1)
    {
        return Some(format!(".{id}()"));
    }
    None
}

fn seq_like(id: &str) -> bool {
    id == "seq" || id == "sequence" || id.ends_with("_seq")
}

fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        matches!(&w[0].kind, TokKind::Punct('#'))
            && matches!(&w[1].kind, TokKind::Punct('!'))
            && matches!(&w[2].kind, TokKind::Punct('['))
            && matches!(&w[3].kind, TokKind::Ident(s) if s == "forbid")
            && matches!(&w[4].kind, TokKind::Punct('('))
            && matches!(&w[5].kind, TokKind::Ident(s) if s == "unsafe_code")
            && matches!(&w[6].kind, TokKind::Punct(')'))
            && matches!(&w[7].kind, TokKind::Punct(']'))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_sim() -> FileClass {
        classify("crates/core/src/x.rs", None)
    }

    #[test]
    fn classify_paths() {
        let c = classify("crates/netsim/src/link.rs", None);
        assert!(c.sim_critical && !c.is_test && !c.is_bin && !c.is_crate_root);
        let c = classify("crates/pilot/src/lib.rs", None);
        assert!(!c.sim_critical && c.is_crate_root);
        let c = classify("src/bin/mmt-sim.rs", None);
        assert!(c.is_bin && c.is_crate_root && c.crate_name == "mmt");
        let c = classify("crates/core/tests/roundtrip.rs", None);
        assert!(c.is_test);
        let c = classify("crates/lint/tests/fixtures/p1/src/code.rs", Some("core"));
        assert!(c.sim_critical && !c.is_test && !c.is_bin);
    }

    #[test]
    fn d1_flags_and_escapes() {
        let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() } // mmt-lint: allow(D1, \"test helper\")\n";
        let v = check_file("x.rs", &class_sim(), src);
        // Line 1 flagged; line 2 escaped (both occurrences on that line).
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("D1", 1));
    }

    #[test]
    fn cfg_test_region_exempts_p1() {
        let src = "\
pub fn lib_code(x: Option<u32>) -> u32 { x.unwrap() }

#[cfg(test)]
mod tests {
    #[test]
    fn ok() {
        let y: Option<u32> = Some(1);
        assert_eq!(y.unwrap(), 1);
    }
}
";
        let v = check_file("crates/core/src/x.rs", &class_sim(), src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("P1", 1));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = check_file("crates/core/src/x.rs", &class_sim(), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "P1");
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(check_file("crates/core/src/x.rs", &class_sim(), src).is_empty());
    }

    #[test]
    fn s1_arrow_is_not_subtraction() {
        let src = "fn next_seq(x: u32) -> u32 { x.wrapping_add(1) }\n";
        assert!(check_file("crates/core/src/x.rs", &class_sim(), src).is_empty());
        let bad = "fn f(seq: u64) -> u64 { seq + 1 }\n";
        let v = check_file("crates/core/src/x.rs", &class_sim(), bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "S1");
    }

    #[test]
    fn standalone_escape_covers_next_line() {
        let src = "// mmt-lint: allow(P1, \"infallible by construction\")\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(check_file("crates/core/src/x.rs", &class_sim(), src).is_empty());
    }

    #[test]
    fn u1_missing_forbid() {
        let c = classify("crates/foo/src/lib.rs", None);
        let v = check_file("crates/foo/src/lib.rs", &c, "pub fn x() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("U1", 1));
        let ok = "#![forbid(unsafe_code)]\npub fn x() {}\n";
        assert!(check_file("crates/foo/src/lib.rs", &c, ok).is_empty());
    }

    #[test]
    fn esc_reported_for_malformed() {
        let src = "fn f() {} // mmt-lint: allow(P1)\n";
        let v = check_file("crates/core/src/x.rs", &class_sim(), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "ESC");
    }
}
