//! A minimal Rust lexer: just enough structure for rule checks.
//!
//! Produces a token stream (identifiers, numbers, punctuation) with line
//! numbers, plus the line comments (for escape parsing). String
//! literals, raw strings, byte strings, char literals, lifetimes, and
//! nested block comments are consumed without producing tokens, so a
//! `"HashMap"` inside a string can never trip a rule.

/// What kind of token this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident(String),
    /// An integer literal (value not needed by any rule).
    Num,
    /// A floating-point literal (`1.0`, `1e9`, `2.5f32`) — F1 needs the
    /// distinction, nothing needs the value.
    Float,
    /// A string literal's body (escapes unprocessed) — F1 scans these
    /// for float format specs; every other rule ignores them.
    Str(String),
    /// A single punctuation character (`.`, `+`, `#`, `[`, ...).
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token kind.
    pub kind: TokKind,
}

/// A `//` comment (escape comments ride on these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based line of the comment.
    pub line: u32,
    /// Text after the `//`.
    pub text: String,
    /// True when nothing but whitespace precedes the comment on its line
    /// (a standalone comment also escapes the *next* line).
    pub standalone: bool,
}

/// Lexer output.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub toks: Vec<Tok>,
    /// All `//` comments, in source order.
    pub comments: Vec<LineComment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unrecognizable bytes become punctuation,
/// and unterminated literals simply run to end of file.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether any non-whitespace, non-comment content appeared on the
    // current line before position `i` (drives `standalone`).
    let mut line_has_code = false;

    let at = |idx: usize| chars.get(idx).copied();

    while let Some(c) = at(i) {
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == Some('/') => {
                let start = i + 2;
                let mut j = start;
                while let Some(cc) = at(j) {
                    if cc == '\n' {
                        break;
                    }
                    j += 1;
                }
                let text: String = chars.get(start..j).unwrap_or_default().iter().collect();
                out.comments.push(LineComment {
                    line,
                    text,
                    standalone: !line_has_code,
                });
                i = j; // the '\n' (or EOF) is handled by the loop
            }
            '/' if at(i + 1) == Some('*') => {
                // Nested block comment.
                let mut depth = 1u32;
                let mut j = i + 2;
                while let Some(cc) = at(j) {
                    if cc == '\n' {
                        line += 1;
                        line_has_code = false;
                        j += 1;
                    } else if cc == '/' && at(j + 1) == Some('*') {
                        depth += 1;
                        j += 2;
                    } else if cc == '*' && at(j + 1) == Some('/') {
                        depth -= 1;
                        j += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let start_line = line;
                let (end, body) = skip_string(&chars, i, &mut line);
                out.toks.push(Tok {
                    line: start_line,
                    kind: TokKind::Str(body),
                });
                i = end;
                line_has_code = true;
            }
            '\'' => {
                i = skip_char_or_lifetime(&chars, i, &mut line);
                line_has_code = true;
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while at(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                let ident: String = chars.get(start..j).unwrap_or_default().iter().collect();
                line_has_code = true;
                // String-literal prefixes: r"", r#""#, b"", br"", and the
                // raw-identifier form r#name.
                let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
                if is_str_prefix && matches!(at(j), Some('"') | Some('#')) {
                    let mut hashes = 0usize;
                    let mut k = j;
                    while at(k) == Some('#') {
                        hashes += 1;
                        k += 1;
                    }
                    if at(k) == Some('"') {
                        // Raw (or byte) string literal.
                        let start_line = line;
                        let (end, body) = skip_raw_string(&chars, k + 1, hashes, &mut line);
                        out.toks.push(Tok {
                            line: start_line,
                            kind: TokKind::Str(body),
                        });
                        i = end;
                        continue;
                    }
                    if ident == "r" && hashes == 1 && at(k).is_some_and(is_ident_start) {
                        // Raw identifier r#name: lex the name itself.
                        let rstart = k;
                        let mut m = k;
                        while at(m).is_some_and(is_ident_continue) {
                            m += 1;
                        }
                        let name: String =
                            chars.get(rstart..m).unwrap_or_default().iter().collect();
                        out.toks.push(Tok {
                            line,
                            kind: TokKind::Ident(name),
                        });
                        i = m;
                        continue;
                    }
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Ident(ident),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while at(j).is_some_and(is_ident_continue)
                    || (at(j) == Some('.') && at(j + 1).is_some_and(|cc| cc.is_ascii_digit()))
                {
                    j += 1;
                }
                let text: String = chars.get(start..j).unwrap_or_default().iter().collect();
                // `x.0` / `pair.0.1` are tuple-field accesses, not floats.
                let after_dot = out
                    .toks
                    .last()
                    .is_some_and(|t| t.kind == TokKind::Punct('.'));
                let kind = if !after_dot && is_float_literal(&text) {
                    TokKind::Float
                } else {
                    TokKind::Num
                };
                out.toks.push(Tok { line, kind });
                line_has_code = true;
                i = j;
            }
            other => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(other),
                });
                line_has_code = true;
                i += 1;
            }
        }
    }
    out
}

/// Classify a numeric literal's text. Hex/octal/binary are never floats
/// (`0xDEAD` contains an `e` but is an integer); otherwise a `.`, an
/// `f32`/`f64` suffix, or an exponent marks a float. An `e`/`E` counts
/// as an exponent only in numeric position — preceded by a digit or
/// `.`, followed by a digit or nothing (`1e-9` lexes as `1e` `-` `9`) —
/// so suffixed integers like `0usize` stay integers.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x")
        || text.starts_with("0X")
        || text.starts_with("0b")
        || text.starts_with("0o")
    {
        return false;
    }
    if text.contains('.') || text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    let chars: Vec<char> = text.chars().collect();
    chars.iter().enumerate().any(|(i, c)| {
        (*c == 'e' || *c == 'E')
            && i > 0
            && chars[i - 1].is_ascii_digit()
            && chars
                .get(i + 1)
                .is_none_or(|n| n.is_ascii_digit() || *n == '_')
    })
}

/// Consume a normal `"..."` string starting at the opening quote;
/// returns the index just past the closing quote and the raw body text
/// (escape sequences unprocessed).
fn skip_string(chars: &[char], open: usize, line: &mut u32) -> (usize, String) {
    let mut j = open + 1;
    let mut body = String::new();
    while let Some(c) = chars.get(j).copied() {
        match c {
            '\\' => {
                body.push(c);
                if let Some(next) = chars.get(j + 1) {
                    body.push(*next);
                }
                j += 2;
            }
            '"' => return (j + 1, body),
            '\n' => {
                *line += 1;
                body.push(c);
                j += 1;
            }
            _ => {
                body.push(c);
                j += 1;
            }
        }
    }
    (j, body)
}

/// Consume a raw string body starting just past the opening quote; the
/// string ends at `"` followed by `hashes` `#`s. Returns the index just
/// past the close and the body text.
fn skip_raw_string(chars: &[char], body: usize, hashes: usize, line: &mut u32) -> (usize, String) {
    let mut j = body;
    let mut text = String::new();
    while let Some(c) = chars.get(j).copied() {
        if c == '\n' {
            *line += 1;
            text.push(c);
            j += 1;
            continue;
        }
        if c == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, text);
            }
        }
        text.push(c);
        j += 1;
    }
    (j, text)
}

/// Disambiguate a char literal (`'x'`, `'\n'`) from a lifetime (`'a`).
/// Returns the index just past the construct.
fn skip_char_or_lifetime(chars: &[char], open: usize, line: &mut u32) -> usize {
    match chars.get(open + 1).copied() {
        Some('\\') => {
            // Escaped char literal: skip to the closing quote.
            let mut j = open + 2;
            while let Some(c) = chars.get(j).copied() {
                if c == '\\' {
                    j += 2;
                } else if c == '\'' {
                    return j + 1;
                } else {
                    if c == '\n' {
                        *line += 1;
                    }
                    j += 1;
                }
            }
            j
        }
        Some(c) if is_ident_start(c) => {
            // Could be 'a' (char) or 'a (lifetime) or 'static.
            let mut j = open + 1;
            while chars.get(j).copied().is_some_and(is_ident_continue) {
                j += 1;
            }
            if chars.get(j) == Some(&'\'') {
                j + 1 // char literal like 'x'
            } else {
                j // lifetime: leave following tokens alone
            }
        }
        Some(_) => {
            // Char literal of punctuation/digit, e.g. '(' or '7'.
            if chars.get(open + 2) == Some(&'\'') {
                open + 3
            } else {
                open + 2
            }
        }
        None => open + 1,
    }
}

/// A well-formed escape comment: `mmt-lint: allow(RULE, "justification")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Escape {
    /// Line the escape comment is on.
    pub line: u32,
    /// The rule id it suppresses.
    pub rule: String,
    /// Whether the comment stands alone on its line (then it also covers
    /// the next line).
    pub standalone: bool,
}

/// A `// mmt-lint: hot` / `// mmt-lint: cold` heat marker. `hot` makes
/// the next function A1-checked anywhere; `cold` opts a function out
/// inside a designated hot module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heat {
    /// Allocation-checked.
    Hot,
    /// Opted out of allocation checks (hot modules only).
    Cold,
}

/// One heat marker with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatMarker {
    /// Line the marker comment is on.
    pub line: u32,
    /// Hot or cold.
    pub heat: Heat,
}

/// Escape comments parsed from a file, plus any malformed ones.
#[derive(Debug, Default)]
pub struct Escapes {
    /// Valid escapes.
    pub valid: Vec<Escape>,
    /// Lines carrying a `mmt-lint:` marker that failed to parse (missing
    /// rule or justification, or an unknown directive).
    pub malformed: Vec<u32>,
    /// `hot` / `cold` heat markers, in source order.
    pub markers: Vec<HeatMarker>,
}

const MARKER: &str = "mmt-lint:";

/// Parse escapes and heat markers out of the lexed comments. Doc
/// comments (`///`, `//!`) are documentation, not escape carriers —
/// they may mention the marker freely.
pub fn parse_escapes(comments: &[LineComment]) -> Escapes {
    let mut out = Escapes::default();
    for c in comments {
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let rest = c.text.get(pos + MARKER.len()..).unwrap_or("").trim();
        match rest {
            "hot" => {
                out.markers.push(HeatMarker {
                    line: c.line,
                    heat: Heat::Hot,
                });
                continue;
            }
            "cold" => {
                out.markers.push(HeatMarker {
                    line: c.line,
                    heat: Heat::Cold,
                });
                continue;
            }
            _ => {}
        }
        match parse_allow(rest) {
            Some(rule) => out.valid.push(Escape {
                line: c.line,
                rule,
                standalone: c.standalone,
            }),
            None => out.malformed.push(c.line),
        }
    }
    out
}

/// Parse `allow(RULE, "justification")`; returns the rule id.
fn parse_allow(s: &str) -> Option<String> {
    let s = s.strip_prefix("allow")?.trim_start();
    let s = s.strip_prefix('(')?;
    let comma = s.find(',')?;
    let rule = s.get(..comma)?.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return None;
    }
    let rest = s.get(comma + 1..)?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let endq = rest.find('"')?;
    let justification = rest.get(..endq)?;
    if justification.trim().is_empty() {
        return None;
    }
    let tail = rest.get(endq + 1..)?.trim_start();
    tail.strip_prefix(')')?;
    Some(rule.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_idents() {
        let src = r##"
let a = "HashMap inside string";
// HashMap inside line comment
/* HashMap inside /* nested */ block */
let b = r#"HashMap raw"#;
let c = b"HashMap bytes";
let real = HashMap::new();
"##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; let e = '\"'; }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // Lifetime name must not leak as an identifier token.
        assert!(!ids.contains(&"a".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_in_literals() {
        let src = "let s = \"two\nlines\";\nlet x = HashMap::new();";
        let lexed = lex(src);
        let hm = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("HashMap".into()))
            .expect("HashMap token");
        assert_eq!(hm.line, 3);
    }

    #[test]
    fn raw_identifier_lexes_inner_name() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn escape_parsing_round_trips() {
        let src = r#"
let a = 1; // mmt-lint: allow(P1, "reason here")
// mmt-lint: allow(D1, "standalone reason")
let b = 2;
// mmt-lint: allow(D1)
// mmt-lint: allow(D1, "")
"#;
        let lexed = lex(src);
        let esc = parse_escapes(&lexed.comments);
        assert_eq!(esc.valid.len(), 2);
        assert_eq!(esc.valid[0].rule, "P1");
        assert!(!esc.valid[0].standalone);
        assert_eq!(esc.valid[1].rule, "D1");
        assert!(esc.valid[1].standalone);
        assert_eq!(esc.malformed, vec![5, 6]);
    }

    #[test]
    fn standalone_detection_depends_on_preceding_code() {
        let lexed = lex("let x = 1; // trailing\n// alone\n");
        assert!(!lexed.comments[0].standalone);
        assert!(lexed.comments[1].standalone);
    }

    #[test]
    fn float_literals_classified() {
        let floats = |src: &str| {
            lex(src)
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Float)
                .count()
        };
        assert_eq!(floats("let a = 1.0;"), 1);
        assert_eq!(floats("let a = 1e9;"), 1);
        assert_eq!(floats("let a = 2.5f32;"), 1);
        assert_eq!(floats("let a = 3f64;"), 1);
        assert_eq!(floats("let a = 0xDEAD;"), 0); // hex 'e' is not an exponent
        assert_eq!(floats("let a = 0xFEEDu64;"), 0);
        assert_eq!(floats("let a = 10u64 + 1_000;"), 0);
        assert_eq!(floats("let a = 0usize;"), 0); // suffix 'e' is not an exponent
        assert_eq!(floats("let a = 3usize.pow(2);"), 0);
        assert_eq!(floats("let a = 1e-9;"), 1); // lexes as `1e` `-` `9`
        assert_eq!(floats("let a = pair.0;"), 0); // tuple field access
        assert_eq!(floats("let a = t.0.1;"), 0);
        assert_eq!(floats("for i in 0..10 {}"), 0);
    }

    #[test]
    fn string_bodies_captured() {
        let strs = |src: &str| -> Vec<String> {
            lex(src)
                .toks
                .into_iter()
                .filter_map(|t| match t.kind {
                    TokKind::Str(s) => Some(s),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(strs(r#"let a = "plain";"#), vec!["plain"]);
        assert_eq!(strs(r#"let a = format!("{:.3}", x);"#), vec!["{:.3}"]);
        assert_eq!(strs(r##"let a = r#"raw {:e}"#;"##), vec!["raw {:e}"]);
        // Escaped quote stays inside the body.
        assert_eq!(strs(r#"let a = "a\"b";"#), vec!["a\\\"b"]);
    }

    #[test]
    fn heat_markers_parse_without_malformed() {
        let src = "// mmt-lint: hot\nfn f() {}\n// mmt-lint: cold\nfn g() {}\n// mmt-lint: warm\n";
        let lexed = lex(src);
        let esc = parse_escapes(&lexed.comments);
        assert_eq!(esc.markers.len(), 2);
        assert_eq!(esc.markers[0].heat, Heat::Hot);
        assert_eq!(esc.markers[0].line, 1);
        assert_eq!(esc.markers[1].heat, Heat::Cold);
        assert_eq!(esc.markers[1].line, 3);
        // Unknown directives are still malformed, not silently ignored.
        assert_eq!(esc.malformed, vec![5]);
    }
}
