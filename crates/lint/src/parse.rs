//! Structural layer over the token stream: matched delimiters, `fn`
//! item spans, `match` expressions with their arms, and statement
//! extents.
//!
//! This is deliberately not a Rust parser — no precedence, no types, no
//! name resolution. It recovers just enough shape (which tokens live in
//! which function body, where a `match` arm's pattern ends, how far the
//! statement after a comment stretches) for the structural rules (F1,
//! A1, W1, E1) and the token-aware escape binder. Errors never abort:
//! unmatched delimiters and half-parsed items degrade to "no structure
//! here", and the token-level rules still run.

use crate::lexer::{Heat, Tok, TokKind};

/// Sentinel for "no matching delimiter found".
pub const UNMATCHED: usize = usize::MAX;

/// One `fn` item (free function, method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line of the item start: first attached attribute, visibility
    /// qualifier, or the `fn` keyword itself.
    pub start_line: u32,
    /// Line of the `fn` keyword.
    pub fn_line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index of the body `{` (None for bodyless trait methods).
    pub body_open: Option<usize>,
    /// Token index of the body's matching `}`.
    pub body_close: Option<usize>,
    /// Heat classification from a `// mmt-lint: hot` / `cold` marker
    /// bound to this function (None when unmarked).
    pub heat: Option<Heat>,
}

/// One arm of a `match` expression.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Token range of the pattern (guard and `=>` excluded); empty when
    /// the splitter could not recover it (struct patterns).
    pub pat: (usize, usize),
    /// Line of the `=>`.
    pub line: u32,
}

/// One `match` expression.
#[derive(Debug, Clone)]
pub struct MatchSpan {
    /// Token index of the `match` keyword.
    pub match_tok: usize,
    /// Token index of the body `{`.
    pub body_open: usize,
    /// Token index of the body `}`.
    pub body_close: usize,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
}

/// The structural index of one file.
#[derive(Debug, Default)]
pub struct Structure {
    /// For each token index: matching close for an open delimiter,
    /// matching open for a close delimiter, [`UNMATCHED`] otherwise.
    pub pair: Vec<usize>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnSpan>,
    /// Every `match` expression, in source order.
    pub matches: Vec<MatchSpan>,
    /// Lines of heat markers that bound to no function (diagnosed ESC).
    pub unbound_markers: Vec<u32>,
}

fn is_open(k: &TokKind) -> bool {
    matches!(
        k,
        TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{')
    )
}

fn is_close(k: &TokKind) -> bool {
    matches!(
        k,
        TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}')
    )
}

/// Build the structural index for a token stream, binding the given
/// heat markers to the functions they annotate.
pub fn analyze(toks: &[Tok], markers: &[crate::lexer::HeatMarker]) -> Structure {
    let mut s = Structure {
        pair: vec![UNMATCHED; toks.len()],
        ..Structure::default()
    };
    // 1. Delimiter matching (kind-insensitive best effort: a stray close
    //    just pops whatever is open).
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if is_open(&t.kind) {
            stack.push(i);
        } else if is_close(&t.kind) {
            if let Some(open) = stack.pop() {
                s.pair[open] = i;
                s.pair[i] = open;
            }
        }
    }

    // 2. fn items.
    let mut i = 0usize;
    while i < toks.len() {
        let is_fn = matches!(&toks[i].kind, TokKind::Ident(k) if k == "fn")
            && matches!(toks.get(i + 1), Some(t) if matches!(&t.kind, TokKind::Ident(_)));
        if !is_fn {
            i += 1;
            continue;
        }
        let name = match &toks[i + 1].kind {
            TokKind::Ident(n) => n.clone(),
            _ => unreachable!(),
        };
        let (body_open, body_close) = fn_body(toks, &s.pair, i + 2);
        s.fns.push(FnSpan {
            name,
            start_line: item_start_line(toks, &s.pair, i),
            fn_line: toks[i].line,
            fn_tok: i,
            body_open,
            body_close,
            heat: None,
        });
        i += 2;
    }

    // 3. match expressions.
    for i in 0..toks.len() {
        if !matches!(&toks[i].kind, TokKind::Ident(k) if k == "match") {
            continue;
        }
        let Some(body_open) = match_body_open(toks, i) else {
            continue;
        };
        let body_close = s.pair[body_open];
        if body_close == UNMATCHED {
            continue;
        }
        let arms = split_arms(toks, &s.pair, body_open, body_close);
        s.matches.push(MatchSpan {
            match_tok: i,
            body_open,
            body_close,
            arms,
        });
    }

    // 4. Bind heat markers: a marker on a function's header line, or
    //    standing above it, attaches to that function.
    for m in markers {
        let on_header = s
            .fns
            .iter()
            .position(|f| f.fn_line == m.line || (f.start_line <= m.line && m.line <= f.fn_line));
        let below = s
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.start_line > m.line)
            .min_by_key(|(_, f)| f.start_line)
            .map(|(idx, _)| idx);
        match on_header.or(below) {
            Some(idx) => s.fns[idx].heat = Some(m.heat),
            None => s.unbound_markers.push(m.line),
        }
    }
    s
}

impl Structure {
    /// Index (into `fns`) of the innermost function whose body contains
    /// token `tok_idx`.
    pub fn innermost_fn(&self, tok_idx: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (span_len, fn_idx)
        for (idx, f) in self.fns.iter().enumerate() {
            let (Some(open), Some(close)) = (f.body_open, f.body_close) else {
                continue;
            };
            if tok_idx > open && tok_idx < close {
                let len = close - open;
                if best.is_none_or(|(blen, _)| len < blen) {
                    best = Some((len, idx));
                }
            }
        }
        best.map(|(_, idx)| idx)
    }
}

/// Find a fn's body `{` (or None at the signature-terminating `;`),
/// scanning from just past the fn name. Parens/brackets in the
/// signature are skipped by depth; the first depth-0 `{` is the body.
fn fn_body(toks: &[Tok], pair: &[usize], from: usize) -> (Option<usize>, Option<usize>) {
    let mut depth = 0i32;
    let mut j = from;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return (None, None);
                }
            }
            TokKind::Punct('{') if depth == 0 => {
                let close = pair[j];
                if close == UNMATCHED {
                    return (None, None);
                }
                return (Some(j), Some(close));
            }
            TokKind::Punct(';') | TokKind::Punct('}') if depth == 0 => return (None, None),
            _ => {}
        }
        j += 1;
    }
    (None, None)
}

/// Line the item starting at the `fn` keyword really begins on, walking
/// back over visibility qualifiers (`pub`, `pub(crate)`, `const`,
/// `async`, `unsafe`, `extern`, `default`) and attached attributes.
fn item_start_line(toks: &[Tok], pair: &[usize], fn_tok: usize) -> u32 {
    let mut j = fn_tok;
    while j > 0 {
        match &toks[j - 1].kind {
            TokKind::Ident(s)
                if matches!(
                    s.as_str(),
                    "pub" | "const" | "async" | "unsafe" | "extern" | "default"
                ) =>
            {
                j -= 1;
            }
            // `pub(crate)` / `pub(super)`: jump over the paren group.
            TokKind::Punct(')') => {
                let open = pair[j - 1];
                if open == UNMATCHED || open == 0 {
                    break;
                }
                if matches!(&toks[open - 1].kind, TokKind::Ident(s) if s == "pub") {
                    j = open;
                } else {
                    break;
                }
            }
            // `#[attr]`: jump over the bracket group and its `#`.
            TokKind::Punct(']') => {
                let open = pair[j - 1];
                if open == UNMATCHED || open == 0 {
                    break;
                }
                if matches!(&toks[open - 1].kind, TokKind::Punct('#')) {
                    j = open - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    toks[fn_tok.min(toks.len().saturating_sub(1))]
        .line
        .min(toks[j].line)
}

/// Find the `{` opening a `match` body: first depth-0 `{` after the
/// scrutinee (Rust forbids bare struct literals there, so this is
/// unambiguous).
fn match_body_open(toks: &[Tok], match_tok: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = match_tok + 1;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            }
            TokKind::Punct('{') if depth == 0 => return Some(j),
            TokKind::Punct(';') if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Split a match body into arms. Walks the body at depth 0, jumping
/// over delimiter groups wholesale; an arm pattern runs from the last
/// boundary (body open, depth-0 `,`, or the close of a depth-0 `{}`
/// group) to its `=>`, with a trailing `if` guard trimmed off.
fn split_arms(toks: &[Tok], pair: &[usize], body_open: usize, body_close: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut boundary = body_open; // pattern starts after this index
    let mut k = body_open + 1;
    while k < body_close {
        match &toks[k].kind {
            kind if is_open(kind) => {
                let close = pair[k];
                if close == UNMATCHED || close >= body_close {
                    break;
                }
                if *kind == TokKind::Punct('{') {
                    // Block arm body (or block-like expression tail):
                    // the next pattern starts after it.
                    boundary = close;
                }
                k = close + 1;
            }
            TokKind::Punct(',') => {
                boundary = k;
                k += 1;
            }
            TokKind::Punct('=') if matches!(toks.get(k + 1), Some(t) if t.kind == TokKind::Punct('>')) =>
            {
                let mut pat_end = k;
                // Trim a guard: depth-0 `if` inside the fragment.
                for (g, t) in toks.iter().enumerate().take(k).skip(boundary + 1) {
                    if matches!(&t.kind, TokKind::Ident(s) if s == "if") {
                        pat_end = g;
                        break;
                    }
                }
                arms.push(Arm {
                    pat: (boundary + 1, pat_end),
                    line: toks[k].line,
                });
                k += 2;
            }
            _ => k += 1,
        }
    }
    arms
}

/// Classify an arm pattern as a wildcard / catch-all: `_`, a bare
/// lowercase binding (`other`), `mut other`, or an or-pattern with any
/// such alternative. Unit-variant paths (`ControlRepr::Nak(..)`,
/// `None`) are not wildcards.
pub fn is_wildcard_pattern(toks: &[Tok], pat: (usize, usize)) -> bool {
    let (start, end) = pat;
    if start >= end || end > toks.len() {
        return false;
    }
    // Split on depth-0 `|` (leading `|` yields an empty alternative,
    // which is ignored).
    let mut alts: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0i32;
    let mut alt_start = start;
    for (j, t) in toks.iter().enumerate().take(end).skip(start) {
        match &t.kind {
            k if is_open(k) => depth += 1,
            k if is_close(k) => depth -= 1,
            TokKind::Punct('|') if depth == 0 => {
                alts.push((alt_start, j));
                alt_start = j + 1;
            }
            _ => {}
        }
    }
    alts.push((alt_start, end));
    alts.iter().any(|&(a, b)| {
        let toks = &toks[a.min(toks.len())..b.min(toks.len())];
        match toks {
            [t] => matches!(&t.kind, TokKind::Ident(s) if is_binding_name(s)),
            [m, t] => {
                matches!(&m.kind, TokKind::Ident(s) if s == "mut")
                    && matches!(&t.kind, TokKind::Ident(s) if is_binding_name(s))
            }
            _ => false,
        }
    })
}

/// A lone lowercase-or-underscore identifier in pattern position is a
/// catch-all binding (unit variants are uppercase by convention, and
/// the real ones in this workspace all are).
fn is_binding_name(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c == '_' || c.is_lowercase())
}

/// Last line covered by a standalone escape on `line`: the extent of
/// the statement beginning on the next line. Paren/bracket groups are
/// jumped wholesale (a rustfmt-rewrapped call stays covered); the
/// statement ends at a depth-0 `;` or `,`, at a `{` (block bodies are
/// NOT covered — an escape above a `fn` covers its header, not every
/// line inside), or at the close of the enclosing group.
pub fn standalone_extent(toks: &[Tok], pair: &[usize], line: u32) -> u32 {
    let Some(first) = toks.iter().position(|t| t.line > line) else {
        return line + 1;
    };
    if toks[first].line != line + 1 {
        // Nothing attached directly below; cover only the blank line.
        return line + 1;
    }
    let mut k = first;
    let mut last_line = toks[first].line;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct('{') => return toks[k].line,
            TokKind::Punct(';') | TokKind::Punct(',') => return toks[k].line,
            TokKind::Punct('(') | TokKind::Punct('[') => {
                let close = pair[k];
                if close == UNMATCHED {
                    return toks[k].line;
                }
                last_line = toks[close].line;
                k = close + 1;
            }
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                // Enclosing group closed: statement ended before it.
                return last_line;
            }
            _ => {
                last_line = toks[k].line.max(last_line);
                k += 1;
            }
        }
    }
    last_line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, parse_escapes};

    fn structure(src: &str) -> (Vec<Tok>, Structure) {
        let lexed = lex(src);
        let esc = parse_escapes(&lexed.comments);
        let s = analyze(&lexed.toks, &esc.markers);
        (lexed.toks, s)
    }

    #[test]
    fn fn_spans_with_attrs_and_vis() {
        let src = "\
#[inline]
pub(crate) fn alpha(x: u32) -> u32 { x }

fn beta();
";
        let (_, s) = structure(src);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "alpha");
        assert_eq!(s.fns[0].start_line, 1); // attribute line
        assert_eq!(s.fns[0].fn_line, 2);
        assert!(s.fns[0].body_open.is_some());
        assert_eq!(s.fns[1].name, "beta");
        assert!(s.fns[1].body_open.is_none());
    }

    #[test]
    fn innermost_fn_resolves_nesting() {
        let src = "fn outer() { fn inner() { let x = 1; } let y = 2; }";
        let (toks, s) = structure(src);
        let x_idx = toks
            .iter()
            .position(|t| t.kind == TokKind::Ident("x".into()))
            .unwrap();
        let y_idx = toks
            .iter()
            .position(|t| t.kind == TokKind::Ident("y".into()))
            .unwrap();
        assert_eq!(s.fns[s.innermost_fn(x_idx).unwrap()].name, "inner");
        assert_eq!(s.fns[s.innermost_fn(y_idx).unwrap()].name, "outer");
    }

    #[test]
    fn match_arms_split_and_wildcards_detected() {
        let src = "\
fn f(x: Foo) -> u32 {
    match x {
        Foo::A(n) => n,
        Foo::B { v, .. } => v,
        other => 0,
    }
}
";
        let (toks, s) = structure(src);
        assert_eq!(s.matches.len(), 1);
        let m = &s.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(!is_wildcard_pattern(&toks, m.arms[0].pat));
        assert!(is_wildcard_pattern(&toks, m.arms[2].pat));
        assert_eq!(m.arms[2].line, 5);
    }

    #[test]
    fn guards_and_underscores() {
        let src = "\
fn f(x: u32) -> u32 {
    match x {
        0 => 1,
        n if n > 10 => n,
        _ => 0,
    }
}
";
        let (toks, s) = structure(src);
        let m = &s.matches[0];
        assert_eq!(m.arms.len(), 3);
        // `n if n > 10` is a guarded catch-all binding: still a wildcard.
        assert!(is_wildcard_pattern(&toks, m.arms[1].pat));
        assert!(is_wildcard_pattern(&toks, m.arms[2].pat));
    }

    #[test]
    fn block_arm_bodies_do_not_swallow_next_pattern() {
        let src = "\
fn f(x: Foo) -> u32 {
    match x {
        Foo::A(n) => { let y = n; y }
        _ => 0,
    }
}
";
        let (toks, s) = structure(src);
        let m = &s.matches[0];
        assert_eq!(m.arms.len(), 2);
        assert!(is_wildcard_pattern(&toks, m.arms[1].pat));
    }

    #[test]
    fn or_pattern_with_binding_alternative() {
        let src = "fn f(x: u32) { match x { 0 | n => {} } }";
        let (toks, s) = structure(src);
        assert!(is_wildcard_pattern(&toks, s.matches[0].arms[0].pat));
        let src2 = "fn f(x: E) { match x { E::A | E::B => {} } }";
        let (toks2, s2) = structure(src2);
        assert!(!is_wildcard_pattern(&toks2, s2.matches[0].arms[0].pat));
    }

    #[test]
    fn heat_markers_bind_to_next_fn() {
        let src = "\
// mmt-lint: hot
#[inline]
fn fast() {}

fn plain() {}

// mmt-lint: cold
fn slow() {}

// mmt-lint: hot
";
        let lexed = lex(src);
        let esc = parse_escapes(&lexed.comments);
        let s = analyze(&lexed.toks, &esc.markers);
        assert_eq!(s.fns[0].heat, Some(crate::lexer::Heat::Hot));
        assert_eq!(s.fns[1].heat, None);
        assert_eq!(s.fns[2].heat, Some(crate::lexer::Heat::Cold));
        assert_eq!(s.unbound_markers, vec![10]);
    }

    #[test]
    fn standalone_extent_tracks_rewrapped_statements() {
        // Single-line statement: extent is the next line (old behavior).
        let src = "// c\nlet x = y.f();\n";
        let lexed = lex(src);
        let s = analyze(&lexed.toks, &[]);
        assert_eq!(standalone_extent(&lexed.toks, &s.pair, 1), 2);

        // Rewrapped call: the whole statement is covered.
        let src = "// c\nlet x = compute(\n    a,\n    b,\n).unwrap();\n";
        let lexed = lex(src);
        let s = analyze(&lexed.toks, &[]);
        assert_eq!(standalone_extent(&lexed.toks, &s.pair, 1), 5);

        // Escape above a fn covers the header, not the body.
        let src = "// c\nfn f(\n    a: u32,\n) -> u32 {\n    a\n}\n";
        let lexed = lex(src);
        let s = analyze(&lexed.toks, &[]);
        assert_eq!(standalone_extent(&lexed.toks, &s.pair, 1), 4);

        // Match arm covered to its trailing comma.
        let src = "// c\nFoo::A(n) =>\n    handle(n),\n";
        let lexed = lex(src);
        let s = analyze(&lexed.toks, &[]);
        assert_eq!(standalone_extent(&lexed.toks, &s.pair, 1), 3);

        // Blank line below: nothing attached.
        let src = "// c\n\nlet x = 1;\n";
        let lexed = lex(src);
        let s = analyze(&lexed.toks, &[]);
        assert_eq!(standalone_extent(&lexed.toks, &s.pair, 1), 2);
    }
}
