//! `mmt-lint` — a zero-dependency static analyzer enforcing the
//! workspace's determinism and panic-freedom contract.
//!
//! The whole value of the MMT reproduction rests on runs being
//! byte-deterministic and replayable from a seed (the telemetry
//! determinism regression and the chaos harness's replay-by-seed
//! contract). This crate machine-checks the coding rules that guarantee
//! it, instead of leaving them as tribal knowledge:
//!
//! | Rule | What it forbids |
//! |------|-----------------|
//! | `D1` | `HashMap`/`HashSet` in sim-critical crates (nondeterministic iteration order) |
//! | `D2` | Ambient nondeterminism (`Instant`, `SystemTime`, `std::env`) outside `SimRng`/sim-clock modules |
//! | `P1` | `unwrap()`/`expect()`/`panic!`/`unimplemented!`/`todo!` in non-test library code |
//! | `U1` | Crate roots without `#![forbid(unsafe_code)]` |
//! | `S1` | Bare `+`/`-` on sequence-number identifiers (use the wrapping/saturating helpers) |
//! | `ESC` | Malformed escape comments and unattached heat markers |
//! | `F1` | Float literals, float-cast arithmetic, libm calls, and float format specs in digest-critical crates |
//! | `A1` | Allocation (`Vec::new`, `vec!`, `format!`, `.clone()`, ...) in hot functions |
//! | `W1` | Wildcard arms in `match`es over the wire control discriminant |
//! | `E1` | Stale escapes: an `allow(...)` that no longer suppresses anything |
//!
//! Per-line escapes carry a mandatory justification:
//!
//! ```text
//! // mmt-lint: allow(P1, "buffer sized two lines above; emit cannot fail")
//! ```
//!
//! An escape suppresses its rule on its own line, and — when the comment
//! stands alone on its line — across the full extent of the statement
//! starting on the next line (token-aware, so rustfmt rewrapping cannot
//! detach it). E1 audits every escape each run: one that suppresses
//! nothing is itself a violation, keeping the escape list a shrinking
//! budget rather than a ratchet leak.
//!
//! Hot functions are designated by a `// mmt-lint: hot` marker on (or
//! above) the function, or by living in a hot module
//! ([`rules::HOT_MODULES`]), where `// mmt-lint: cold` opts a function
//! back out.
//!
//! There is deliberately no full Rust parse here (per the workspace's
//! offline-build policy: no `syn`, no clippy plugins). A hand-rolled
//! lexer plus a structural layer ([`parse`]: matched delimiters, `fn`
//! spans, `match` arms, statement extents) is enough to make every rule
//! token-accurate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scan;

pub use rules::Violation;
pub use scan::{run, Report};
