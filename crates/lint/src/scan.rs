//! Directory walking, file classification, and report rendering.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{check_file_full, classify, Violation};

/// Directories never descended into during a scan.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "fixtures"];

/// The outcome of a scan.
#[derive(Debug, Default)]
pub struct Report {
    /// How many `.rs` files were checked.
    pub files_scanned: usize,
    /// All diagnostics, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Total well-formed `allow(...)` escapes across the scan — the
    /// escape budget CI tracks per PR.
    pub escapes: usize,
}

impl Report {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering, one diagnostic per line plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.path, v.line, v.rule, v.message
            ));
        }
        out.push_str(&format!(
            "mmt-lint: {} file(s) scanned, {} violation(s), {} escape(s)\n",
            self.files_scanned,
            self.violations.len(),
            self.escapes
        ));
        out
    }

    /// Machine-readable rendering for `--format json`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"escapes\":{},", self.escapes));
        out.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.message)
            ));
        }
        out.push_str("]}");
        out.push('\n');
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Scan the given roots (files or directories). Directories are walked
/// recursively in sorted order (deterministic output), skipping
/// `target`, `.git`, `results`, and fixture trees; explicitly named
/// files are always scanned, whatever their location.
pub fn run(roots: &[PathBuf], assume_crate: Option<&str>) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in roots {
        let meta = fs::metadata(root)?;
        if meta.is_dir() {
            collect(root, &mut files)?;
        } else {
            files.push(root.clone());
        }
    }
    files.sort();
    files.dedup();

    let mut report = Report::default();
    for path in &files {
        let src = fs::read_to_string(path)?;
        let display = path.to_string_lossy().replace('\\', "/");
        let class = classify(&display, assume_crate);
        let check = check_file_full(&display, &class, &src);
        report.violations.extend(check.violations);
        report.escapes += check.escapes;
        report.files_scanned += 1;
    }
    report.violations.sort();
    Ok(report)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_renders_counts() {
        let r = Report {
            files_scanned: 3,
            violations: vec![],
            escapes: 7,
        };
        assert!(r.is_clean());
        assert!(r
            .render_text()
            .contains("3 file(s) scanned, 0 violation(s), 7 escape(s)"));
        assert!(r.render_json().contains("\"files_scanned\":3"));
        assert!(r.render_json().contains("\"escapes\":7"));
    }
}
