//! `mmt-lint` CLI.
//!
//! ```text
//! mmt-lint [--format text|json] [--assume-crate NAME] [PATH ...]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mmt-lint [--format text|json] [--assume-crate NAME] [PATH ...]
  PATH            files or directories to scan (default: current directory)
  --format FMT    output format: text (default) or json
  --assume-crate  force crate classification (fixture testing)
exit codes: 0 clean, 1 violations, 2 usage/IO error";

fn main() -> ExitCode {
    let mut format = String::from("text");
    let mut assume: Option<String> = None;
    let mut roots: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => return usage_error("--format requires `text` or `json`"),
            },
            "--assume-crate" => match args.next() {
                Some(n) if !n.is_empty() => assume = Some(n),
                _ => return usage_error("--assume-crate requires a crate name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage_error(&format!("unknown flag `{flag}`"));
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        roots.push(PathBuf::from("."));
    }

    let report = match mmt_lint::run(&roots, assume.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mmt-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("mmt-lint: error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
