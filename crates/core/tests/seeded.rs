//! Seeded randomized tests for the protocol core: sequence-tracker
//! correctness against a naive model, and buffer/receiver behaviour under
//! arbitrary arrival patterns. Cases replay exactly from the fixed seeds.

use mmt_core::SeqTracker;
use mmt_netsim::SimRng;
use std::collections::BTreeSet;

/// The interval-based tracker agrees with a naive set model on every
/// query, for arbitrary insertion orders with duplicates.
#[test]
fn seqtracker_matches_naive_model() {
    let mut rng = SimRng::new(0xC04E_0001);
    for _ in 0..100 {
        let n = rng.next_bounded(400) as usize;
        let seqs: Vec<u64> = (0..n).map(|_| rng.next_bounded(500)).collect();
        let mut tracker = SeqTracker::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for s in seqs {
            let fresh = tracker.record(s);
            assert_eq!(fresh, model.insert(s), "record({s}) freshness");
        }
        assert_eq!(tracker.received_count(), model.len() as u64);
        assert_eq!(tracker.highest(), model.iter().next_back().copied());
        for probe in 0..500u64 {
            assert_eq!(tracker.contains(probe), model.contains(&probe));
        }
        // Missing ranges cover exactly the model's holes below the max.
        if let Some(&max) = model.iter().next_back() {
            let holes: Vec<u64> = (0..max).filter(|s| !model.contains(s)).collect();
            let reported: Vec<u64> = tracker
                .missing_ranges(usize::MAX)
                .into_iter()
                .flat_map(|r| r.first..=r.last)
                .collect();
            assert_eq!(reported, holes);
        } else {
            assert!(tracker.missing_ranges(usize::MAX).is_empty());
        }
    }
}

/// Gap count equals the number of maximal missing runs.
#[test]
fn gap_count_consistent() {
    let mut rng = SimRng::new(0xC04E_0002);
    for _ in 0..100 {
        let n = 1 + rng.next_bounded(149) as usize;
        let mut tracker = SeqTracker::new();
        for _ in 0..n {
            tracker.record(rng.next_bounded(200));
        }
        assert_eq!(
            tracker.gap_count(),
            tracker.missing_ranges(usize::MAX).len()
        );
    }
}

mod buffer_props {
    use mmt_core::buffer::{RetransmitBuffer, PORT_DAQ, PORT_WAN};
    use mmt_dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
    use mmt_netsim::{Bandwidth, Context, LinkSpec, Node, Packet, PortId, SimRng, Simulator, Time};
    use mmt_wire::mmt::{ControlRepr, ExperimentId, MmtRepr, NakRange, NakRepr};
    use mmt_wire::{EthernetAddress, Ipv4Address};

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn exp() -> ExperimentId {
        ExperimentId::new(2, 0)
    }

    /// For any NAK ranges, the buffer's response = (packets it holds)
    /// and misses = (packets it does not), exactly.
    #[test]
    fn nak_service_is_exact() {
        let mut rng = SimRng::new(0xC04E_0003);
        for _ in 0..40 {
            let stored = 1 + rng.next_bounded(39) as usize;
            let n_ranges = 1 + rng.next_bounded(5) as usize;
            let raw_ranges: Vec<(u64, u64)> = (0..n_ranges)
                .map(|_| (rng.next_bounded(60), rng.next_bounded(5)))
                .collect();

            let mut sim = Simulator::new(1);
            let buf = sim.add_node(
                "dtn1",
                Box::new(RetransmitBuffer::with_defaults(
                    exp(),
                    Ipv4Address::new(10, 0, 0, 5),
                    1_000_000_000,
                    1 << 24,
                )),
            );
            let wan = sim.add_node("wan", Box::new(Sink));
            sim.add_oneway(
                buf,
                PORT_WAN,
                wan,
                0,
                LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
            );
            // Feed `stored` sensor messages; seqs 0..stored get retained.
            for i in 0..stored {
                let mut payload = vec![0u8; 64];
                payload[..8].copy_from_slice(&(i as u64).to_be_bytes());
                let frame = build_eth_mmt_frame(
                    EthernetAddress([2, 0, 0, 0, 0, 1]),
                    EthernetAddress([2, 0, 0, 0, 0, 2]),
                    &MmtRepr::data(exp()),
                    &payload,
                );
                sim.inject(
                    Time::from_micros(i as u64),
                    buf,
                    PORT_DAQ,
                    Packet::new(frame),
                );
            }
            sim.run();
            let forwarded = sim.local_deliveries(wan).len();
            assert_eq!(forwarded, stored);

            let ranges: Vec<NakRange> = raw_ranges
                .iter()
                .map(|&(first, span)| NakRange {
                    first,
                    last: first + span,
                })
                .collect();
            // NAK ranges may overlap; the buffer serves per listed seq.
            let expect_hits: u64 = ranges
                .iter()
                .flat_map(|r| r.first..=r.last)
                .filter(|&s| s < stored as u64)
                .count() as u64;
            let expect_misses: u64 = ranges
                .iter()
                .flat_map(|r| r.first..=r.last)
                .filter(|&s| s >= stored as u64)
                .count() as u64;
            let ctrl = ControlRepr::Nak(NakRepr {
                requester: Ipv4Address::new(10, 0, 0, 8),
                requester_port: 47_000,
                ranges,
            })
            .emit_packet(exp());
            let repr = MmtRepr::parse(&ctrl).unwrap();
            let frame = build_eth_mmt_frame(
                EthernetAddress([2, 0, 0, 0, 0, 8]),
                EthernetAddress([2, 0, 0, 0, 0, 2]),
                &repr,
                &ctrl[repr.header_len()..],
            );
            sim.inject(sim.now(), buf, PORT_WAN, Packet::new(frame));
            sim.run();
            let b = sim.node_as::<RetransmitBuffer>(buf).unwrap();
            assert_eq!(b.stats.retransmitted, expect_hits);
            assert_eq!(b.stats.nak_misses, expect_misses);
            // Retransmitted copies really went out the WAN port.
            assert_eq!(
                sim.local_deliveries(wan).len(),
                stored + expect_hits as usize
            );
            // And they carry the right sequence numbers.
            for (_, pkt) in &sim.local_deliveries(wan)[stored..] {
                let seq = ParsedPacket::parse(pkt.bytes.clone(), 0)
                    .mmt_repr()
                    .unwrap()
                    .sequence()
                    .unwrap();
                assert!(seq < stored as u64);
            }
        }
    }
}
