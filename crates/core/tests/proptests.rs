//! Property tests for the protocol core: sequence-tracker correctness
//! against a naive model, and buffer/receiver behaviour under arbitrary
//! arrival patterns.

use proptest::prelude::*;

use mmt_core::SeqTracker;
use std::collections::BTreeSet;

proptest! {
    /// The interval-based tracker agrees with a naive set model on every
    /// query, for arbitrary insertion orders with duplicates.
    #[test]
    fn seqtracker_matches_naive_model(seqs in proptest::collection::vec(0u64..500, 0..400)) {
        let mut tracker = SeqTracker::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for s in seqs {
            let fresh = tracker.record(s);
            prop_assert_eq!(fresh, model.insert(s), "record({}) freshness", s);
        }
        prop_assert_eq!(tracker.received_count(), model.len() as u64);
        prop_assert_eq!(tracker.highest(), model.iter().next_back().copied());
        for probe in 0..500u64 {
            prop_assert_eq!(tracker.contains(probe), model.contains(&probe));
        }
        // Missing ranges cover exactly the model's holes below the max.
        if let Some(&max) = model.iter().next_back() {
            let holes: Vec<u64> = (0..max).filter(|s| !model.contains(s)).collect();
            let reported: Vec<u64> = tracker
                .missing_ranges(usize::MAX)
                .into_iter()
                .flat_map(|r| r.first..=r.last)
                .collect();
            prop_assert_eq!(reported, holes);
        } else {
            prop_assert!(tracker.missing_ranges(usize::MAX).is_empty());
        }
    }

    /// Gap count equals the number of maximal missing runs.
    #[test]
    fn gap_count_consistent(seqs in proptest::collection::vec(0u64..200, 1..150)) {
        let mut tracker = SeqTracker::new();
        for &s in &seqs {
            tracker.record(s);
        }
        prop_assert_eq!(
            tracker.gap_count(),
            tracker.missing_ranges(usize::MAX).len()
        );
    }
}

mod buffer_props {
    use super::*;
    use mmt_core::buffer::{RetransmitBuffer, PORT_DAQ, PORT_WAN};
    use mmt_dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
    use mmt_netsim::{Bandwidth, Context, LinkSpec, Node, Packet, PortId, Simulator, Time};
    use mmt_wire::mmt::{ControlRepr, ExperimentId, MmtRepr, NakRange, NakRepr};
    use mmt_wire::{EthernetAddress, Ipv4Address};

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn exp() -> ExperimentId {
        ExperimentId::new(2, 0)
    }

    proptest! {
        /// For any NAK ranges, the buffer's response = (packets it holds)
        /// and misses = (packets it does not), exactly.
        #[test]
        fn nak_service_is_exact(
            stored in 1usize..40,
            raw_ranges in proptest::collection::vec((0u64..60, 0u64..5), 1..6),
        ) {
            let mut sim = Simulator::new(1);
            let buf = sim.add_node(
                "dtn1",
                Box::new(RetransmitBuffer::with_defaults(
                    exp(),
                    Ipv4Address::new(10, 0, 0, 5),
                    1_000_000_000,
                    1 << 24,
                )),
            );
            let wan = sim.add_node("wan", Box::new(Sink));
            sim.add_oneway(buf, PORT_WAN, wan, 0, LinkSpec::new(Bandwidth::gbps(100), Time::ZERO));
            // Feed `stored` sensor messages; seqs 0..stored get retained.
            for i in 0..stored {
                let mut payload = vec![0u8; 64];
                payload[..8].copy_from_slice(&(i as u64).to_be_bytes());
                let frame = build_eth_mmt_frame(
                    EthernetAddress([2, 0, 0, 0, 0, 1]),
                    EthernetAddress([2, 0, 0, 0, 0, 2]),
                    &MmtRepr::data(exp()),
                    &payload,
                );
                sim.inject(Time::from_micros(i as u64), buf, PORT_DAQ, Packet::new(frame));
            }
            sim.run();
            let forwarded = sim.local_deliveries(wan).len();
            prop_assert_eq!(forwarded, stored);

            let ranges: Vec<NakRange> = raw_ranges
                .iter()
                .map(|&(first, span)| NakRange { first, last: first + span })
                .collect();
            let mut requested: Vec<u64> =
                ranges.iter().flat_map(|r| r.first..=r.last).collect();
            requested.sort_unstable();
            requested.dedup();
            // NAK ranges may overlap; the buffer serves per listed seq.
            let expect_hits: u64 = ranges
                .iter()
                .flat_map(|r| r.first..=r.last)
                .filter(|&s| s < stored as u64)
                .count() as u64;
            let expect_misses: u64 = ranges
                .iter()
                .flat_map(|r| r.first..=r.last)
                .filter(|&s| s >= stored as u64)
                .count() as u64;
            let ctrl = ControlRepr::Nak(NakRepr {
                requester: Ipv4Address::new(10, 0, 0, 8),
                requester_port: 47_000,
                ranges,
            })
            .emit_packet(exp());
            let repr = MmtRepr::parse(&ctrl).unwrap();
            let frame = build_eth_mmt_frame(
                EthernetAddress([2, 0, 0, 0, 0, 8]),
                EthernetAddress([2, 0, 0, 0, 0, 2]),
                &repr,
                &ctrl[repr.header_len()..],
            );
            sim.inject(sim.now(), buf, PORT_WAN, Packet::new(frame));
            sim.run();
            let b = sim.node_as::<RetransmitBuffer>(buf).unwrap();
            prop_assert_eq!(b.stats.retransmitted, expect_hits);
            prop_assert_eq!(b.stats.nak_misses, expect_misses);
            // Retransmitted copies really went out the WAN port.
            prop_assert_eq!(
                sim.local_deliveries(wan).len(),
                stored + expect_hits as usize
            );
            // And they carry the right sequence numbers.
            for (_, pkt) in &sim.local_deliveries(wan)[stored..] {
                let seq = ParsedPacket::parse(pkt.bytes.clone(), 0)
                    .mmt_repr()
                    .unwrap()
                    .sequence()
                    .unwrap();
                prop_assert!(seq < stored as u64);
            }
        }
    }
}
