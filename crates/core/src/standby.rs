//! The standby retransmission buffer — the re-homing target.
//!
//! §5.1 names *a* "'recent' (lower RTT) retransmission buffer"; nothing in
//! the architecture says there is only one. This node sits downstream of
//! the primary buffer (DTN 1) and passively taps the upgraded stream: data
//! packets are retained and forwarded unchanged, NAKs climbing back
//! upstream pass through untouched. When the control plane re-homes the
//! flow to this node (a mode change naming this node's address as the
//! retransmit source), the standby goes *active*: it intercepts upstream
//! NAKs and serves them from its own store, re-stamping the RETRANSMIT
//! extension with its own address so every recovered packet re-teaches the
//! receiver where recovery now lives. Sequences it cannot serve continue
//! upstream — the primary, if alive, still gets a chance.

use crate::machine::{self, Input, Machine, Output};
use mmt_dataplane::parser::ParsedPacket;
use mmt_netsim::{Context, Node, Packet, PortId, Time};
use mmt_wire::mmt::{ControlRepr, ModeChangeRepr};
use mmt_wire::Ipv4Address;
use std::collections::{BTreeMap, VecDeque};

/// Port facing the primary buffer (upstream).
pub const PORT_UP: PortId = 0;
/// Port facing the WAN (downstream).
pub const PORT_DOWN: PortId = 1;

/// Counters exposed after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandbyBufferStats {
    /// Data packets tapped into the store on the way through.
    pub tapped: u64,
    /// Packets evicted to honour the capacity bound.
    pub evicted: u64,
    /// NAK messages seen travelling upstream.
    pub naks_seen: u64,
    /// Sequences served from the standby store (active only).
    pub served: u64,
    /// NAKed sequences not in the store while active.
    pub misses: u64,
    /// NAKs (or unserved remainders) forwarded on upstream.
    pub naks_forwarded: u64,
    /// Mode changes that activated this standby.
    pub activations: u64,
}

/// The standby buffer node.
pub struct StandbyBuffer {
    own_addr: Ipv4Address,
    own_port: u16,
    capacity_bytes: usize,
    store_bytes: usize,
    ring: VecDeque<u64>,
    store: BTreeMap<u64, Packet>,
    active: bool,
    /// Minimum spacing between serves of the same sequence.
    retx_holdoff: Time,
    last_retx: BTreeMap<u64, Time>,
    outbox: Vec<Output>,
    /// Counters.
    pub stats: StandbyBufferStats,
}

impl StandbyBuffer {
    /// Create a standby tapping the stream, answering (once activated) as
    /// `own_addr:own_port`.
    pub fn new(own_addr: Ipv4Address, own_port: u16, capacity_bytes: usize) -> StandbyBuffer {
        StandbyBuffer {
            own_addr,
            own_port,
            capacity_bytes,
            store_bytes: 0,
            ring: VecDeque::new(),
            store: BTreeMap::new(),
            active: false,
            retx_holdoff: Time::ZERO,
            last_retx: BTreeMap::new(),
            outbox: Vec::new(),
            stats: StandbyBufferStats::default(),
        }
    }

    /// Set the per-sequence serve holdoff (NAK-storm protection, same
    /// semantics as [`crate::RetransmitBuffer::with_retx_holdoff`]).
    pub fn with_retx_holdoff(mut self, holdoff: Time) -> StandbyBuffer {
        self.retx_holdoff = holdoff;
        self
    }

    /// Whether the standby is currently answering NAKs.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of packets currently retained.
    pub fn stored_count(&self) -> usize {
        self.store.len()
    }

    /// Bytes currently retained.
    pub fn stored_bytes(&self) -> usize {
        self.store_bytes
    }

    /// Export the standby's counters into a metric registry, labeled by
    /// `node`.
    pub fn export_metrics(&self, node: &str, reg: &mut mmt_telemetry::MetricRegistry) {
        let labels = [("node", node)];
        for (name, help, value) in [
            (
                "mmt_standby_tapped_total",
                "Data packets tapped into the standby store.",
                self.stats.tapped,
            ),
            (
                "mmt_standby_evicted_total",
                "Standby store evictions to honour the capacity bound.",
                self.stats.evicted,
            ),
            (
                "mmt_standby_naks_seen_total",
                "NAK messages seen travelling upstream.",
                self.stats.naks_seen,
            ),
            (
                "mmt_standby_served_total",
                "Sequences served from the standby store.",
                self.stats.served,
            ),
            (
                "mmt_standby_misses_total",
                "NAKed sequences not in the standby store while active.",
                self.stats.misses,
            ),
            (
                "mmt_standby_naks_forwarded_total",
                "NAKs (or unserved remainders) forwarded upstream.",
                self.stats.naks_forwarded,
            ),
            (
                "mmt_standby_activations_total",
                "Mode changes that activated this standby.",
                self.stats.activations,
            ),
        ] {
            reg.describe(name, help);
            reg.counter_add(name, &labels, value);
        }
        reg.describe(
            "mmt_standby_active",
            "Whether the standby is currently answering NAKs (0/1).",
        );
        reg.gauge_set("mmt_standby_active", &labels, u64::from(self.active) as f64);
        reg.describe(
            "mmt_standby_stored_bytes",
            "Bytes currently retained in the standby store.",
        );
        reg.gauge_set("mmt_standby_stored_bytes", &labels, self.store_bytes as f64);
    }

    fn retain(&mut self, seq: u64, pkt: Packet) {
        // Retransmissions from the primary pass through here too; the
        // first copy is authoritative, so a duplicate sequence must not
        // inflate the ring or the byte count.
        if self.store.contains_key(&seq) {
            return;
        }
        let len = pkt.len();
        while self.store_bytes + len > self.capacity_bytes {
            let Some(old) = self.ring.pop_front() else {
                break;
            };
            if let Some(old_pkt) = self.store.remove(&old) {
                self.store_bytes -= old_pkt.len();
                self.stats.evicted += 1;
                self.last_retx.remove(&old);
            }
        }
        if len <= self.capacity_bytes {
            self.store_bytes += len;
            self.ring.push_back(seq);
            self.store.insert(seq, pkt);
            self.stats.tapped += 1;
        }
    }

    fn handle_mode_change(&mut self, mc: &ModeChangeRepr) {
        let addressed_here =
            mc.retransmit_source == self.own_addr && mc.retransmit_port == self.own_port;
        if addressed_here && !self.active {
            self.active = true;
            self.stats.activations += 1;
        }
    }

    /// Serve what we can of an upstream NAK; returns the ranges still
    /// missing (to be re-NAKed upstream).
    fn serve_nak(
        &mut self,
        now: Time,
        out: &mut Vec<Output>,
        nak: &mmt_wire::mmt::NakRepr,
        from_port: PortId,
    ) -> Vec<mmt_wire::mmt::NakRange> {
        let mut missing = Vec::new();
        for range in &nak.ranges {
            for seq in range.first..=range.last {
                match self.store.get(&seq) {
                    Some(pkt) => {
                        if self.retx_holdoff > Time::ZERO {
                            if let Some(&last) = self.last_retx.get(&seq) {
                                if now.saturating_sub(last) < self.retx_holdoff {
                                    continue;
                                }
                            }
                        }
                        // Re-stamp the RETRANSMIT extension: the recovered
                        // copy teaches the receiver that NAKs now resolve
                        // here, not at the dead primary.
                        let mut parsed = ParsedPacket::parse(pkt.bytes.clone(), PORT_UP);
                        let Some(repr) = parsed.mmt_repr() else {
                            self.stats.misses += 1;
                            continue;
                        };
                        parsed.rewrite_mmt(&repr.with_retransmit(self.own_addr, self.own_port));
                        let served = Packet {
                            bytes: parsed.bytes,
                            meta: pkt.meta,
                        };
                        out.push(Output::Transmit {
                            port: from_port,
                            pkt: served,
                        });
                        self.last_retx.insert(seq, now);
                        self.stats.served += 1;
                    }
                    None => {
                        self.stats.misses += 1;
                        missing.push(mmt_wire::mmt::NakRange {
                            first: seq,
                            last: seq,
                        });
                    }
                }
            }
        }
        missing
    }

    fn on_frame(&mut self, now: Time, port: PortId, pkt: Packet, out: &mut Vec<Output>) {
        let parsed = ParsedPacket::parse(pkt.bytes, port);
        let Some(off) = parsed.layers.mmt_offset() else {
            return;
        };
        match ControlRepr::parse_packet(&parsed.bytes[off..]) {
            Ok((_, ControlRepr::ModeChange(mc))) => {
                self.handle_mode_change(&mc);
                return;
            }
            Ok((_, ControlRepr::Nak(nak))) if port == PORT_DOWN => {
                self.stats.naks_seen += 1;
                let pkt = Packet {
                    bytes: parsed.bytes,
                    meta: pkt.meta,
                };
                if !self.active {
                    // Passive: relay the NAK to the primary untouched.
                    self.stats.naks_forwarded += 1;
                    out.push(Output::Transmit { port: PORT_UP, pkt });
                    return;
                }
                let missing = self.serve_nak(now, out, &nak, PORT_DOWN);
                if !missing.is_empty() {
                    // Whatever we could not serve still deserves a shot at
                    // the primary: pass the original NAK on upstream (the
                    // primary's store dedups by holdoff; sequences we
                    // already served cost one duplicate at worst).
                    self.stats.naks_forwarded += 1;
                    out.push(Output::Transmit { port: PORT_UP, pkt });
                }
                return;
            }
            // A NAK heard on any other port, and everything else, flows
            // through the data path below.
            Ok((_, ControlRepr::Nak(_)))
            | Ok((_, ControlRepr::DeadlineExceeded(_)))
            | Ok((_, ControlRepr::Backpressure(_)))
            | Err(_) => {}
        }
        match port {
            PORT_UP => {
                // Downstream data: tap sequenced packets, pass everything.
                let pkt = Packet {
                    bytes: parsed.bytes,
                    meta: pkt.meta,
                };
                if let Some(seq) = pkt.meta.seq {
                    if !pkt.meta.control {
                        self.retain(seq, pkt.clone());
                    }
                }
                out.push(Output::Transmit {
                    port: PORT_DOWN,
                    pkt,
                });
            }
            _ => {
                // Upstream control (credits, deadline notifications, NAKs
                // while passive fell through above): relay to the primary.
                out.push(Output::Transmit {
                    port: PORT_UP,
                    pkt: Packet {
                        bytes: parsed.bytes,
                        meta: pkt.meta,
                    },
                });
            }
        }
    }
}

impl Machine for StandbyBuffer {
    fn poll(&mut self, now: Time, input: Input, out: &mut Vec<Output>) {
        match input {
            Input::Frame { port, pkt } => self.on_frame(now, port, pkt, out),
            Input::Start | Input::Timer { .. } | Input::Restart => {}
        }
    }

    fn crash(&mut self) {
        // Same DRAM failure model as the primary: the store is gone, the
        // activation (control-plane state) survives in the controller and
        // would be re-pushed on restart.
        self.store.clear();
        self.ring.clear();
        self.store_bytes = 0;
        self.last_retx.clear();
        self.active = false;
    }

    fn outbox(&mut self) -> &mut Vec<Output> {
        &mut self.outbox
    }
}

impl Node for StandbyBuffer {
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
        machine::step(self, ctx, Input::Frame { port, pkt });
    }

    fn on_crash(&mut self) {
        Machine::crash(self);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_dataplane::parser::build_eth_mmt_frame;
    use mmt_netsim::{Bandwidth, LinkSpec, NodeId, Simulator};
    use mmt_wire::mmt::{ExperimentId, Features, MmtRepr, NakRange, NakRepr};
    use mmt_wire::EthernetAddress;

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn exp() -> ExperimentId {
        ExperimentId::new(2, 0)
    }

    const STANDBY: Ipv4Address = Ipv4Address([10, 0, 0, 6]);
    const PRIMARY: Ipv4Address = Ipv4Address([10, 0, 0, 5]);

    /// An upgraded (mode 2) data frame as it would leave the primary.
    fn upgraded_frame(seq: u64) -> Packet {
        let repr = MmtRepr::data(exp())
            .with_sequence(seq)
            .with_retransmit(PRIMARY, 47_000);
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &repr,
            &[0u8; 200],
        );
        let mut pkt = Packet::new(frame);
        pkt.meta.seq = Some(seq);
        pkt
    }

    fn nak_frame(ranges: Vec<NakRange>) -> Packet {
        let ctrl = ControlRepr::Nak(NakRepr {
            requester: Ipv4Address::new(10, 0, 0, 8),
            requester_port: 47_000,
            ranges,
        })
        .emit_packet(exp());
        let repr = MmtRepr::parse(&ctrl).unwrap();
        let mut pkt = Packet::new(build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 8]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &repr,
            &ctrl[repr.header_len()..],
        ));
        pkt.meta.control = true;
        pkt
    }

    fn activation_frame() -> Packet {
        let ctrl = ControlRepr::ModeChange(ModeChangeRepr {
            config_id: 1,
            features: Features::SEQUENCE | Features::RETRANSMIT | Features::ACK_NAK,
            retransmit_source: STANDBY,
            retransmit_port: 47_001,
            window: 0,
        })
        .emit_packet(exp());
        let repr = MmtRepr::parse(&ctrl).unwrap();
        let mut pkt = Packet::new(build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 9]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &repr,
            &ctrl[repr.header_len()..],
        ));
        pkt.meta.control = true;
        pkt
    }

    /// up-sink ← standby → down-sink.
    fn setup() -> (Simulator, NodeId, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        let sb = sim.add_node(
            "standby",
            Box::new(StandbyBuffer::new(STANDBY, 47_001, 1 << 20)),
        );
        let up = sim.add_node("up", Box::new(Sink));
        let down = sim.add_node("down", Box::new(Sink));
        let spec = LinkSpec::new(Bandwidth::gbps(100), Time::ZERO);
        sim.add_oneway(sb, PORT_UP, up, 0, spec);
        sim.add_oneway(sb, PORT_DOWN, down, 0, spec);
        (sim, sb, up, down)
    }

    #[test]
    fn passive_taps_data_and_relays_naks_upstream() {
        let (mut sim, sb, up, down) = setup();
        for i in 0..5 {
            sim.inject(Time::from_micros(i), sb, PORT_UP, upgraded_frame(i));
        }
        sim.inject(
            Time::from_micros(50),
            sb,
            PORT_DOWN,
            nak_frame(vec![NakRange { first: 1, last: 2 }]),
        );
        sim.run();
        // All data forwarded down; the NAK relayed up, nothing served.
        assert_eq!(sim.local_deliveries(down).len(), 5);
        assert_eq!(sim.local_deliveries(up).len(), 1);
        let b = sim.node_as::<StandbyBuffer>(sb).unwrap();
        assert!(!b.is_active());
        assert_eq!(b.stats.tapped, 5);
        assert_eq!(b.stats.naks_seen, 1);
        assert_eq!(b.stats.naks_forwarded, 1);
        assert_eq!(b.stats.served, 0);
    }

    #[test]
    fn duplicate_sequences_do_not_inflate_the_store() {
        let (mut sim, sb, _, _) = setup();
        for t in 0..3 {
            sim.inject(Time::from_micros(t), sb, PORT_UP, upgraded_frame(7));
        }
        sim.run();
        let b = sim.node_as::<StandbyBuffer>(sb).unwrap();
        assert_eq!(b.stats.tapped, 1);
        assert_eq!(b.stored_count(), 1);
        assert_eq!(b.stored_bytes(), upgraded_frame(7).len());
    }

    #[test]
    fn active_serves_naks_with_rehomed_source() {
        let (mut sim, sb, up, down) = setup();
        for i in 0..5 {
            sim.inject(Time::from_micros(i), sb, PORT_UP, upgraded_frame(i));
        }
        sim.inject(Time::from_micros(10), sb, PORT_DOWN, activation_frame());
        sim.inject(
            Time::from_micros(50),
            sb,
            PORT_DOWN,
            nak_frame(vec![NakRange { first: 1, last: 2 }]),
        );
        sim.run();
        let down_got = sim.local_deliveries(down);
        // 5 passthrough + 2 served.
        assert_eq!(down_got.len(), 7);
        for (_, pkt) in &down_got[5..] {
            let repr = ParsedPacket::parse(pkt.bytes.clone(), 0)
                .mmt_repr()
                .unwrap();
            let r = repr.retransmit().unwrap();
            assert_eq!(r.source, STANDBY, "served copy must name the standby");
            assert_eq!(r.port, 47_001);
        }
        // Fully served: nothing forwarded upstream.
        assert!(sim.local_deliveries(up).is_empty());
        let b = sim.node_as::<StandbyBuffer>(sb).unwrap();
        assert!(b.is_active());
        assert_eq!(b.stats.activations, 1);
        assert_eq!(b.stats.served, 2);
        assert_eq!(b.stats.naks_forwarded, 0);
    }

    #[test]
    fn unserved_remainder_continues_upstream() {
        let (mut sim, sb, up, _) = setup();
        sim.inject(Time::ZERO, sb, PORT_UP, upgraded_frame(1));
        sim.inject(Time::from_micros(10), sb, PORT_DOWN, activation_frame());
        // Seq 1 is in the store; seq 9 is not.
        sim.inject(
            Time::from_micros(50),
            sb,
            PORT_DOWN,
            nak_frame(vec![
                NakRange { first: 1, last: 1 },
                NakRange { first: 9, last: 9 },
            ]),
        );
        sim.run();
        assert_eq!(sim.local_deliveries(up).len(), 1, "remainder NAK relayed");
        let b = sim.node_as::<StandbyBuffer>(sb).unwrap();
        assert_eq!(b.stats.served, 1);
        assert_eq!(b.stats.misses, 1);
        assert_eq!(b.stats.naks_forwarded, 1);
    }

    #[test]
    fn foreign_mode_change_does_not_activate() {
        let (mut sim, sb, _, _) = setup();
        let ctrl = ControlRepr::ModeChange(ModeChangeRepr {
            config_id: 1,
            features: Features::SEQUENCE,
            retransmit_source: PRIMARY, // someone else
            retransmit_port: 47_000,
            window: 0,
        })
        .emit_packet(exp());
        let repr = MmtRepr::parse(&ctrl).unwrap();
        let pkt = Packet::new(build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 9]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &repr,
            &ctrl[repr.header_len()..],
        ));
        sim.inject(Time::ZERO, sb, PORT_DOWN, pkt);
        sim.run();
        let b = sim.node_as::<StandbyBuffer>(sb).unwrap();
        assert!(!b.is_active());
        assert_eq!(b.stats.activations, 0);
    }

    #[test]
    fn crash_wipes_store_and_deactivates() {
        let (mut sim, sb, up, _) = setup();
        for i in 0..4 {
            sim.inject(Time::from_micros(i), sb, PORT_UP, upgraded_frame(i));
        }
        sim.inject(Time::from_micros(10), sb, PORT_DOWN, activation_frame());
        sim.schedule_crash(sb, Time::from_micros(20), Some(Time::from_micros(30)));
        sim.inject(
            Time::from_micros(50),
            sb,
            PORT_DOWN,
            nak_frame(vec![NakRange { first: 0, last: 0 }]),
        );
        sim.run();
        let b = sim.node_as::<StandbyBuffer>(sb).unwrap();
        assert_eq!(b.stored_count(), 0);
        assert!(!b.is_active());
        // Post-crash NAK relayed upstream (passive again).
        assert_eq!(sim.local_deliveries(up).len(), 1);
    }
}
