//! The MMT source endpoint.
//!
//! Sensors "stream out data encapsulated in the protocol's header, even if
//! directly over layer 2" (§5.1) in mode 0, and do **not** buffer for
//! retransmission (§4: "At the originating sensor ①, DAQ data is not
//! buffered for retransmission") — reliability is added downstream by the
//! network. The sender honours backpressure credits when a relayed signal
//! arrives (§5.1: "if an element ③ receives signals of downstream
//! congestion or loss, it can relay a back-pressure signal to the sender").

use crate::machine::{self, Input, Machine, Output};
use mmt_dataplane::parser::{build_eth_mmt_frame, build_ip_mmt_frame, build_udp_tunnel_frame};
use mmt_netsim::{Context, Node, Packet, PortId, Time, TimerToken};
use mmt_wire::mmt::{ControlRepr, ExperimentId, MmtRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};

/// How the sender frames its datagrams (Req 1: the protocol works both
/// directly on Ethernet and on IP; a UDP tunnel covers networks that drop
/// unknown IP protocols).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// MMT directly over Ethernet (DAQ-network framing).
    Ethernet,
    /// MMT over IPv4 (protocol 253).
    Ipv4 {
        /// Source address.
        src: Ipv4Address,
        /// Destination address.
        dst: Ipv4Address,
    },
    /// MMT in a UDP tunnel over IPv4.
    UdpTunnel {
        /// Source address.
        src: Ipv4Address,
        /// Destination address.
        dst: Ipv4Address,
    },
}

const TOKEN_PUMP: TimerToken = 1;

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Experiment/slice identity stamped on every datagram.
    pub experiment: ExperimentId,
    /// Payload size per datagram.
    pub message_len: usize,
    /// Creation schedule (non-decreasing), one entry per message.
    pub schedule: Vec<Time>,
    /// Source MAC.
    pub src_mac: EthernetAddress,
    /// Next-hop MAC.
    pub dst_mac: EthernetAddress,
    /// Honour backpressure credits (BACKPRESSURE behaviour). When false,
    /// backpressure control messages are counted but ignored.
    pub respect_backpressure: bool,
    /// Wire framing for emitted datagrams.
    pub framing: Framing,
}

impl SenderConfig {
    /// A sender with a fixed-gap schedule (regular-shape elephant flow).
    pub fn regular(
        experiment: ExperimentId,
        message_len: usize,
        gap: Time,
        count: usize,
    ) -> SenderConfig {
        SenderConfig {
            experiment,
            message_len,
            schedule: (0..count as u64).map(|i| gap * i).collect(),
            src_mac: EthernetAddress([0x02, 0, 0, 0, 0, 0x01]),
            dst_mac: EthernetAddress([0x02, 0, 0, 0, 0, 0x02]),
            respect_backpressure: false,
            framing: Framing::Ethernet,
        }
    }
}

/// Counters exposed after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Datagrams emitted.
    pub sent: u64,
    /// Backpressure signals received.
    pub backpressure_signals: u64,
    /// Deadline-exceeded notifications received (the sender is the
    /// notify target in the pilot: "to alert the source", §5.3).
    pub deadline_notifications: u64,
    /// Messages delayed by lack of credits.
    pub credit_stalls: u64,
    /// When the last message was emitted.
    pub finished_at: Option<Time>,
}

/// The source endpoint node.
pub struct MmtSender {
    config: SenderConfig,
    next: usize,
    /// Messages-in-flight credits granted by backpressure (None = no
    /// governor active).
    credits: Option<u64>,
    outbox: Vec<Output>,
    /// Counters.
    pub stats: SenderStats,
}

impl MmtSender {
    /// Create a sender.
    pub fn new(config: SenderConfig) -> MmtSender {
        assert!(
            config.schedule.windows(2).all(|w| w[1] >= w[0]),
            "schedule must be non-decreasing"
        );
        assert!(config.message_len >= 8, "message must fit its index");
        MmtSender {
            config,
            next: 0,
            credits: None,
            outbox: Vec::new(),
            stats: SenderStats::default(),
        }
    }

    /// Whether every scheduled message has been emitted.
    pub fn is_complete(&self) -> bool {
        self.stats.finished_at.is_some()
    }

    /// Export the sender's counters into a metric registry, labeled by
    /// `node` (the endpoint's name in the topology).
    pub fn export_metrics(&self, node: &str, reg: &mut mmt_telemetry::MetricRegistry) {
        let labels = [("node", node)];
        for (name, help, value) in [
            (
                "mmt_sender_sent_total",
                "Datagrams emitted by the source endpoint.",
                self.stats.sent,
            ),
            (
                "mmt_sender_backpressure_signals_total",
                "Backpressure signals received by the source endpoint.",
                self.stats.backpressure_signals,
            ),
            (
                "mmt_sender_deadline_notifications_total",
                "Deadline-exceeded notifications received by the source endpoint.",
                self.stats.deadline_notifications,
            ),
            (
                "mmt_sender_credit_stalls_total",
                "Messages delayed by lack of backpressure credits.",
                self.stats.credit_stalls,
            ),
        ] {
            reg.describe(name, help);
            reg.counter_add(name, &labels, value);
        }
    }

    fn pump(&mut self, now: Time, out: &mut Vec<Output>) {
        while self.next < self.config.schedule.len() && self.config.schedule[self.next] <= now {
            if self.config.respect_backpressure {
                match &mut self.credits {
                    Some(0) => {
                        // Stalled: wait for the next credit grant.
                        self.stats.credit_stalls += 1;
                        return;
                    }
                    Some(c) => *c -= 1,
                    None => {}
                }
            }
            // Mode-0 header: identification only; the network adds the
            // rest. The payload carries the message index so receivers can
            // account per-message latency even before sequencing begins.
            let repr = MmtRepr::data(self.config.experiment);
            let mut payload = vec![0u8; self.config.message_len];
            payload[..8].copy_from_slice(&(self.next as u64).to_be_bytes());
            let frame = match self.config.framing {
                Framing::Ethernet => {
                    build_eth_mmt_frame(self.config.src_mac, self.config.dst_mac, &repr, &payload)
                }
                Framing::Ipv4 { src, dst } => build_ip_mmt_frame(
                    self.config.src_mac,
                    self.config.dst_mac,
                    src,
                    dst,
                    &repr,
                    &payload,
                ),
                Framing::UdpTunnel { src, dst } => build_udp_tunnel_frame(
                    self.config.src_mac,
                    self.config.dst_mac,
                    src,
                    dst,
                    &repr,
                    &payload,
                ),
            };
            let mut pkt = Packet::with_flow(frame, u64::from(self.config.experiment.raw()));
            pkt.meta.created_at = self.config.schedule[self.next];
            // Mirror the header identity into simulator metadata so trace
            // events correlate from the very first hop.
            pkt.meta.seq = repr.sequence();
            pkt.meta.config = Some(u64::from(repr.config_id));
            out.push(Output::Transmit { port: 0, pkt });
            self.stats.sent += 1;
            self.next += 1;
        }
        if self.next < self.config.schedule.len() {
            out.push(Output::WakeAt {
                at: self.config.schedule[self.next],
                token: TOKEN_PUMP,
            });
        } else if self.stats.finished_at.is_none() {
            self.stats.finished_at = Some(now);
        }
    }
}

impl Machine for MmtSender {
    fn poll(&mut self, now: Time, input: Input, out: &mut Vec<Output>) {
        match input {
            Input::Start => self.pump(now, out),
            Input::Frame { pkt, .. } => {
                // The only traffic a sensor receives is relayed control.
                let parsed = mmt_dataplane::parser::ParsedPacket::parse(pkt.bytes, 0);
                let Some(off) = parsed.layers.mmt_offset() else {
                    return;
                };
                match ControlRepr::parse_packet(&parsed.bytes[off..]) {
                    Ok((_, ControlRepr::Backpressure(bp))) => {
                        self.stats.backpressure_signals += 1;
                        if self.config.respect_backpressure {
                            self.credits = Some(u64::from(bp.window));
                            // Credits may unblock the pump.
                            self.pump(now, out);
                        }
                    }
                    Ok((_, ControlRepr::DeadlineExceeded(_))) => {
                        self.stats.deadline_notifications += 1;
                    }
                    Ok((_, ControlRepr::Nak(_))) | Ok((_, ControlRepr::ModeChange(_))) | Err(_) => {
                    }
                }
            }
            Input::Timer { token } => {
                if token == TOKEN_PUMP {
                    self.pump(now, out);
                }
            }
            // Sensors are stateless across power cycles: nothing to redo.
            Input::Restart => {}
        }
    }

    fn outbox(&mut self) -> &mut Vec<Output> {
        &mut self.outbox
    }
}

impl Node for MmtSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        machine::step(self, ctx, Input::Start);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
        machine::step(self, ctx, Input::Frame { port, pkt });
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        machine::step(self, ctx, Input::Timer { token });
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_netsim::{Bandwidth, LinkSpec, Simulator};
    use mmt_wire::mmt::BackpressureRepr;
    use mmt_wire::Ipv4Address;

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn backpressure_frame(experiment: ExperimentId, window: u32) -> Vec<u8> {
        let ctrl = ControlRepr::Backpressure(BackpressureRepr {
            level: 1,
            window,
            origin: Ipv4Address::new(10, 0, 0, 3),
        })
        .emit_packet(experiment);
        let repr = MmtRepr::parse(&ctrl).unwrap();
        build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 9]),
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            &repr,
            &ctrl[repr.header_len()..],
        )
    }

    #[test]
    fn emits_schedule_as_mode0_datagrams() {
        let mut sim = Simulator::new(1);
        let exp = ExperimentId::new(2, 0);
        let cfg = SenderConfig::regular(exp, 1024, Time::from_micros(10), 20);
        let s = sim.add_node("s", Box::new(MmtSender::new(cfg)));
        let d = sim.add_node("d", Box::new(Sink));
        sim.add_oneway(s, 0, d, 0, LinkSpec::new(Bandwidth::gbps(100), Time::ZERO));
        sim.run();
        let got = sim.local_deliveries(d);
        assert_eq!(got.len(), 20);
        for (i, (_, pkt)) in got.iter().enumerate() {
            let parsed = mmt_dataplane::parser::ParsedPacket::parse(pkt.bytes.clone(), 0);
            let repr = parsed.mmt_repr().unwrap();
            assert_eq!(repr.experiment, exp);
            assert!(repr.features.is_empty(), "sensors emit mode 0");
            let payload = parsed.mmt().unwrap().payload().to_vec();
            let idx = u64::from_be_bytes(payload[..8].try_into().unwrap());
            assert_eq!(idx, i as u64);
            // created_at carries the schedule time.
            assert_eq!(pkt.meta.created_at, Time::from_micros(10) * i as u64);
        }
        let stats = sim.node_as::<MmtSender>(s).unwrap().stats;
        assert_eq!(stats.sent, 20);
        assert!(stats.finished_at.is_some());
    }

    #[test]
    fn ignores_backpressure_when_not_configured() {
        let mut sim = Simulator::new(1);
        let exp = ExperimentId::new(2, 0);
        let cfg = SenderConfig::regular(exp, 1024, Time::from_micros(1), 100);
        let s = sim.add_node("s", Box::new(MmtSender::new(cfg)));
        let d = sim.add_node("d", Box::new(Sink));
        sim.add_oneway(s, 0, d, 0, LinkSpec::new(Bandwidth::gbps(100), Time::ZERO));
        sim.inject(Time::ZERO, s, 0, Packet::new(backpressure_frame(exp, 0)));
        sim.run();
        let stats = sim.node_as::<MmtSender>(s).unwrap().stats;
        assert_eq!(stats.sent, 100, "no governor: all messages sent");
        assert_eq!(stats.backpressure_signals, 1);
        assert_eq!(stats.credit_stalls, 0);
    }

    #[test]
    fn backpressure_credits_gate_the_pump() {
        let mut sim = Simulator::new(1);
        let exp = ExperimentId::new(2, 0);
        let mut cfg = SenderConfig::regular(exp, 1024, Time::from_micros(1), 50);
        cfg.respect_backpressure = true;
        let s = sim.add_node("s", Box::new(MmtSender::new(cfg)));
        let d = sim.add_node("d", Box::new(Sink));
        sim.add_oneway(s, 0, d, 0, LinkSpec::new(Bandwidth::gbps(100), Time::ZERO));
        // Grant only 10 credits at t=0 (arrives before any send at t=0?
        // injection order: inject processes at t=0 alongside start — the
        // pump runs first at start, so grant at t=0 may land after some
        // sends; grant tiny credits then more later.
        sim.inject(Time::ZERO, s, 0, Packet::new(backpressure_frame(exp, 10)));
        sim.run_until(Time::from_millis(1));
        let sent_mid = sim.node_as::<MmtSender>(s).unwrap().stats.sent;
        assert!(sent_mid < 50, "credits must stall the sender: {sent_mid}");
        // Grant the rest.
        let now = sim.now();
        sim.inject(now, s, 0, Packet::new(backpressure_frame(exp, 1000)));
        sim.run();
        let stats = sim.node_as::<MmtSender>(s).unwrap().stats;
        assert_eq!(stats.sent, 50);
        assert!(stats.credit_stalls > 0);
    }
}
