//! The in-network retransmission buffer — the DTN 1 role of the pilot.
//!
//! "This buffering reduces the flow-completion time since a
//! re-transmission would originate from a closer source, rather than from
//! ①" (§5.1). The buffer node:
//!
//! 1. runs the DAQ→WAN border pipeline (mode 1 → mode 2 upgrade: sequence
//!    stamping, retransmit-source naming, age/timeliness activation);
//! 2. keeps a bounded ring of the upgraded packets, keyed by sequence
//!    number;
//! 3. answers NAKs from downstream by re-sending the stored packets —
//!    "recovering lost packets involves requesting re-transmission from
//!    DTN 1" (§5.4);
//! 4. optionally relays a backpressure credit signal upstream to the
//!    sender (§5.1), realizing hop-by-hop flow control without TCP-style
//!    congestion control (the §5.3 hypothesis exercised by experiment E7).

use crate::machine::{self, Input, Machine, Output};
use mmt_dataplane::action::Intrinsics;
use mmt_dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
use mmt_dataplane::pipeline::Pipeline;
use mmt_dataplane::programs::{self, BorderConfig};
use mmt_netsim::{Context, Node, Packet, PacketMeta, PortId, Time, TimerToken};
use mmt_wire::mmt::{BackpressureRepr, ControlRepr, ExperimentId, MmtRepr, ModeChangeRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};
use std::collections::{BTreeMap, VecDeque};

const TOKEN_CREDIT: TimerToken = 0x42;

/// Port facing the DAQ network (sensor side).
pub const PORT_DAQ: PortId = 0;
/// Port facing the WAN.
pub const PORT_WAN: PortId = 1;

/// Backpressure credit generation settings.
#[derive(Debug, Clone, Copy)]
pub struct CreditConfig {
    /// Messages granted per interval.
    pub grant: u32,
    /// Grant interval.
    pub interval: Time,
}

/// Counters exposed after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetransmitBufferStats {
    /// Data packets upgraded and forwarded to the WAN.
    pub forwarded: u64,
    /// Packets currently retained (snapshot at read time).
    pub stored: u64,
    /// Packets evicted to honour the capacity bound.
    pub evicted: u64,
    /// NAK messages served.
    pub naks_received: u64,
    /// Packets re-sent in response to NAKs.
    pub retransmitted: u64,
    /// NAKed sequences no longer in the buffer (evicted before recovery).
    pub nak_misses: u64,
    /// Retransmissions suppressed by the holdoff window (NAK-storm
    /// protection: the same sequence re-requested before the previous
    /// copy could plausibly have arrived).
    pub retx_suppressed: u64,
    /// Backpressure grants sent upstream.
    pub credits_sent: u64,
    /// Highest store occupancy ever reached (bytes) — the shed
    /// controller's high-watermark evidence.
    pub occupancy_highwater_bytes: u64,
    /// Mode-change control messages applied to the border pipeline.
    pub mode_changes: u64,
    /// Mirror copies emitted while in a DUPLICATED mode.
    pub mirrored: u64,
}

/// The buffer node.
pub struct RetransmitBuffer {
    pipeline: Pipeline,
    experiment: ExperimentId,
    capacity_bytes: usize,
    store_bytes: usize,
    /// Ring of stored packets, oldest first.
    ring: VecDeque<u64>,
    store: BTreeMap<u64, Packet>,
    credit: Option<CreditConfig>,
    /// Minimum spacing between retransmissions of the same sequence
    /// (`Time::ZERO` = no holdoff, every NAK is served).
    retx_holdoff: Time,
    /// When each sequence was last retransmitted.
    last_retx: BTreeMap<u64, Time>,
    /// Bumped on every crash so credit timers armed before the crash are
    /// recognisably stale after restart (no double credit chains).
    credit_epoch: u64,
    outbox: Vec<Output>,
    /// Counters.
    pub stats: RetransmitBufferStats,
}

impl RetransmitBuffer {
    /// Create the DTN 1 node: a border pipeline configured from `border`,
    /// a `capacity_bytes` retransmission store, and optional credit
    /// generation.
    pub fn new(
        experiment: ExperimentId,
        border: BorderConfig,
        capacity_bytes: usize,
        credit: Option<CreditConfig>,
    ) -> RetransmitBuffer {
        assert_eq!(border.daq_port, PORT_DAQ);
        assert_eq!(border.wan_port, PORT_WAN);
        RetransmitBuffer {
            pipeline: programs::daq_to_wan_border(border),
            experiment,
            capacity_bytes,
            store_bytes: 0,
            ring: VecDeque::new(),
            store: BTreeMap::new(),
            credit,
            retx_holdoff: Time::ZERO,
            last_retx: BTreeMap::new(),
            credit_epoch: 0,
            outbox: Vec::new(),
            stats: RetransmitBufferStats::default(),
        }
    }

    /// Set the per-sequence retransmission holdoff: NAKs for a sequence
    /// retransmitted less than `holdoff` ago are suppressed (counted in
    /// `retx_suppressed`) instead of amplifying a NAK storm. Pick a value
    /// below the receiver's NAK retry interval so legitimate retries are
    /// still served.
    pub fn with_retx_holdoff(mut self, holdoff: Time) -> RetransmitBuffer {
        self.retx_holdoff = holdoff;
        self
    }

    /// Convenience: a buffer whose border names this node as the
    /// retransmission source.
    pub fn with_defaults(
        experiment: ExperimentId,
        own_addr: Ipv4Address,
        deadline_budget_ns: u64,
        capacity_bytes: usize,
    ) -> RetransmitBuffer {
        RetransmitBuffer::new(
            experiment,
            BorderConfig {
                daq_port: PORT_DAQ,
                wan_port: PORT_WAN,
                retransmit_source: (own_addr, 47_000),
                deadline_budget_ns,
                notify_addr: own_addr,
                priority_class: None,
            },
            capacity_bytes,
            None,
        )
    }

    /// Number of packets currently retained.
    pub fn stored_count(&self) -> usize {
        self.store.len()
    }

    /// The border pipeline's sequence-stamping cursor: the next sequence
    /// number it will stamp onto an upgraded data packet.
    pub fn sequence_cursor(&self) -> u64 {
        self.pipeline.register(programs::regs::SEQ_COUNTER)
    }

    /// Seed the sequence-stamping cursor. In deployment the control plane
    /// restores the cursor across restarts (see `on_crash`); tests use
    /// this to place the stream right before a numeric boundary (e.g.
    /// `u32::MAX`) without feeding four billion packets first.
    pub fn seed_sequence_cursor(&mut self, seq: u64) {
        self.pipeline.set_register(programs::regs::SEQ_COUNTER, seq);
    }

    /// Bytes currently retained (the occupancy the shed controller
    /// watches).
    pub fn stored_bytes(&self) -> usize {
        self.store_bytes
    }

    /// Export the buffer's counters (and its border pipeline's per-table
    /// hit/miss counters) into a metric registry, labeled by `node`.
    pub fn export_metrics(&self, node: &str, reg: &mut mmt_telemetry::MetricRegistry) {
        let labels = [("node", node)];
        for (name, help, value) in [
            (
                "mmt_buffer_forwarded_total",
                "Data packets upgraded and forwarded to the WAN.",
                self.stats.forwarded,
            ),
            (
                "mmt_buffer_evicted_total",
                "Packets evicted to honour the capacity bound.",
                self.stats.evicted,
            ),
            (
                "mmt_buffer_naks_received_total",
                "NAK messages served.",
                self.stats.naks_received,
            ),
            (
                "mmt_buffer_retransmitted_total",
                "Packets re-sent in response to NAKs.",
                self.stats.retransmitted,
            ),
            (
                "mmt_buffer_nak_misses_total",
                "NAKed sequences no longer in the buffer (evicted before recovery).",
                self.stats.nak_misses,
            ),
            (
                "mmt_buffer_retx_suppressed_total",
                "Retransmissions suppressed by the per-sequence holdoff window.",
                self.stats.retx_suppressed,
            ),
            (
                "mmt_buffer_credits_sent_total",
                "Backpressure grants sent upstream.",
                self.stats.credits_sent,
            ),
            (
                "mmt_buffer_mode_changes_total",
                "Mode-change control messages applied to the border pipeline.",
                self.stats.mode_changes,
            ),
            (
                "mmt_buffer_mirrored_total",
                "Mirror copies emitted while in a DUPLICATED mode.",
                self.stats.mirrored,
            ),
        ] {
            reg.describe(name, help);
            reg.counter_add(name, &labels, value);
        }
        reg.describe(
            "mmt_buffer_stored_packets",
            "Packets currently retained for retransmission.",
        );
        reg.gauge_set(
            "mmt_buffer_stored_packets",
            &labels,
            self.store.len() as f64,
        );
        reg.describe(
            "mmt_buffer_stored_bytes",
            "Bytes currently retained for retransmission.",
        );
        reg.gauge_set("mmt_buffer_stored_bytes", &labels, self.store_bytes as f64);
        reg.describe(
            "mmt_buffer_occupancy_highwater",
            "Highest retransmission-store occupancy reached, bytes.",
        );
        reg.gauge_set(
            "mmt_buffer_occupancy_highwater",
            &labels,
            self.stats.occupancy_highwater_bytes as f64,
        );
        // Order-sensitive digest: folds the store's iteration order into
        // an exported value, so a regression to a nondeterministically
        // ordered map shows up as byte-diverging telemetry
        // (tests/telemetry_determinism.rs).
        let digest = self
            .store
            .keys()
            .fold(0u64, |h, &s| h.wrapping_mul(31).wrapping_add(s));
        reg.describe(
            "mmt_buffer_stored_seq_digest",
            "Order-sensitive digest of retained sequence numbers.",
        );
        reg.gauge_set(
            "mmt_buffer_stored_seq_digest",
            &labels,
            (digest & 0xFFFF_FFFF) as f64,
        );
        self.pipeline.export_metrics(node, reg);
    }

    /// Sequence numbers currently retained, in map-iteration order. The
    /// order itself is part of the determinism contract — see
    /// `mmt_buffer_stored_seq_digest`.
    pub fn stored_seqs(&self) -> Vec<u64> {
        self.store.keys().copied().collect()
    }

    fn retain(&mut self, seq: u64, pkt: Packet) {
        let len = pkt.len();
        while self.store_bytes + len > self.capacity_bytes {
            let Some(old) = self.ring.pop_front() else {
                break;
            };
            if let Some(old_pkt) = self.store.remove(&old) {
                self.store_bytes -= old_pkt.len();
                self.stats.evicted += 1;
                self.last_retx.remove(&old);
            }
        }
        if len <= self.capacity_bytes {
            self.store_bytes += len;
            self.ring.push_back(seq);
            self.store.insert(seq, pkt);
        }
        self.stats.stored = self.store.len() as u64;
        self.stats.occupancy_highwater_bytes = self
            .stats
            .occupancy_highwater_bytes
            .max(self.store_bytes as u64);
    }

    /// Apply a [`ModeChangeRepr`] to the border pipeline: rewrite the
    /// retransmit source (when named), toggle DUPLICATED mirroring, and
    /// set or clear the stamped backpressure window.
    fn apply_mode_change(&mut self, mc: &ModeChangeRepr) {
        let source = if mc.retransmit_source.is_unspecified() {
            None
        } else {
            Some((mc.retransmit_source, mc.retransmit_port))
        };
        let window = if mc.window == 0 {
            None
        } else {
            Some(mc.window)
        };
        if programs::apply_mode_change(&mut self.pipeline, PORT_WAN, mc.features, source, window) {
            self.stats.mode_changes += 1;
        }
    }

    fn credit_token(&self) -> TimerToken {
        TOKEN_CREDIT | (self.credit_epoch << 8)
    }

    fn serve_nak(
        &mut self,
        now: Time,
        out: &mut Vec<Output>,
        nak: &mmt_wire::mmt::NakRepr,
        from_port: PortId,
    ) {
        self.stats.naks_received += 1;
        for range in &nak.ranges {
            for seq in range.first..=range.last {
                match self.store.get(&seq) {
                    Some(pkt) => {
                        if self.retx_holdoff > Time::ZERO {
                            if let Some(&last) = self.last_retx.get(&seq) {
                                if now.saturating_sub(last) < self.retx_holdoff {
                                    self.stats.retx_suppressed += 1;
                                    continue;
                                }
                            }
                        }
                        out.push(Output::Transmit {
                            port: from_port,
                            pkt: pkt.clone(),
                        });
                        self.last_retx.insert(seq, now);
                        self.stats.retransmitted += 1;
                    }
                    None => self.stats.nak_misses += 1,
                }
            }
        }
    }

    fn send_credit(&mut self, out: &mut Vec<Output>, grant: u32) {
        let ctrl = ControlRepr::Backpressure(BackpressureRepr {
            level: 1,
            window: grant,
            origin: Ipv4Address::UNSPECIFIED,
        })
        .emit_packet(self.experiment);
        // mmt-lint: allow(P1, "parsing bytes emitted one line above; emit/parse are inverses")
        let repr = MmtRepr::parse(&ctrl).expect("just built");
        let frame = build_eth_mmt_frame(
            EthernetAddress([0x02, 0, 0, 0, 0, 0x10]),
            EthernetAddress::BROADCAST,
            &repr,
            &ctrl[repr.header_len()..],
        );
        let mut pkt = Packet::new(frame);
        pkt.meta.control = true;
        out.push(Output::Transmit {
            port: PORT_DAQ,
            pkt,
        });
        self.stats.credits_sent += 1;
    }

    /// Start and restart look the same to the credit generator: open a
    /// fresh grant chain.
    fn start_credit_chain(&mut self, now: Time, out: &mut Vec<Output>) {
        if let Some(credit) = self.credit {
            self.send_credit(out, credit.grant);
            out.push(Output::WakeAt {
                at: now + credit.interval,
                token: self.credit_token(),
            });
        }
    }

    fn on_frame(&mut self, now: Time, port: PortId, pkt: Packet, out: &mut Vec<Output>) {
        let meta = pkt.meta;
        let parsed0 = ParsedPacket::parse(pkt.bytes, port);
        let Some(off) = parsed0.layers.mmt_offset() else {
            return;
        };
        // NAKs are served locally; mode changes reconfigure the border
        // pipeline. Other control messages run through the pipeline.
        match ControlRepr::parse_packet(&parsed0.bytes[off..]) {
            Ok((_, ControlRepr::Nak(nak))) => {
                self.serve_nak(now, out, &nak, port);
                return;
            }
            Ok((_, ControlRepr::ModeChange(mc))) => {
                self.apply_mode_change(&mc);
                return;
            }
            Ok((_, ControlRepr::DeadlineExceeded(_)))
            | Ok((_, ControlRepr::Backpressure(_)))
            | Err(_) => {}
        }
        // Everything else runs the border pipeline.
        let mut parsed = parsed0;
        let intr = Intrinsics {
            now_ns: now.as_nanos(),
            created_at_ns: meta.created_at.as_nanos(),
        };
        let disp = self.pipeline.process(&mut parsed, intr);
        // Forward + retain upgraded data packets. The border pipeline just
        // stamped the sequence; mirror it (and the config id) into the
        // simulator metadata so WAN-side trace events carry it.
        let mut meta = meta;
        if let Some(hdr) = parsed.mmt() {
            meta.seq = hdr.sequence();
            meta.config = Some(u64::from(hdr.config_id()));
        }
        if let Some(egress) = disp.egress {
            let fwd = Packet {
                bytes: parsed.bytes,
                meta,
            };
            if egress == PORT_WAN {
                if let Some(seq) = meta.seq {
                    self.retain(seq, fwd.clone());
                }
                self.stats.forwarded += 1;
            }
            out.push(Output::Transmit {
                port: egress,
                pkt: fwd,
            });
        }
        for (eport, bytes) in disp.emitted {
            // Mirror copies (DUPLICATED mode) are data: they keep the
            // original packet's identity so the receiver's sequence
            // tracker absorbs whichever twin arrives second. Everything
            // else the pipeline emits is control plane (deadline
            // notifications and the like).
            let is_mirror = disp.mirrors.contains(&eport);
            let pmeta = if is_mirror {
                self.stats.mirrored += 1;
                PacketMeta { id: 0, ..meta }
            } else {
                PacketMeta {
                    control: true,
                    ..PacketMeta::default()
                }
            };
            out.push(Output::Transmit {
                port: eport,
                pkt: Packet { bytes, meta: pmeta },
            });
        }
    }
}

impl Machine for RetransmitBuffer {
    fn poll(&mut self, now: Time, input: Input, out: &mut Vec<Output>) {
        match input {
            Input::Start | Input::Restart => self.start_credit_chain(now, out),
            Input::Frame { port, pkt } => self.on_frame(now, port, pkt, out),
            Input::Timer { token } => {
                if token == self.credit_token() {
                    self.start_credit_chain(now, out);
                }
            }
        }
    }

    fn crash(&mut self) {
        // A power loss destroys the DRAM retransmission store: every
        // retained packet, the eviction ring, and the holdoff history.
        // The border pipeline's registers (the sequence cursor) survive —
        // in deployment they live in the switch ASIC and are restored by
        // the control plane; wiping the cursor would re-issue already-used
        // sequence numbers and break exactly-once delivery downstream.
        self.store.clear();
        self.ring.clear();
        self.store_bytes = 0;
        self.last_retx.clear();
        self.stats.stored = 0;
        // Invalidate any credit timer armed before the crash so restart
        // starts exactly one fresh chain.
        self.credit_epoch += 1;
    }

    fn outbox(&mut self) -> &mut Vec<Output> {
        &mut self.outbox
    }
}

impl Node for RetransmitBuffer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        machine::step(self, ctx, Input::Start);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
        machine::step(self, ctx, Input::Frame { port, pkt });
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        machine::step(self, ctx, Input::Timer { token });
    }

    fn on_crash(&mut self) {
        Machine::crash(self);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        machine::step(self, ctx, Input::Restart);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_netsim::{Bandwidth, LinkSpec, Simulator};
    use mmt_wire::mmt::{Features, NakRange, NakRepr};

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn exp() -> ExperimentId {
        ExperimentId::new(2, 0)
    }

    fn sensor_frame(index: u64) -> Packet {
        let mut payload = vec![0u8; 256];
        payload[..8].copy_from_slice(&index.to_be_bytes());
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &MmtRepr::data(exp()),
            &payload,
        );
        Packet::new(frame)
    }

    fn nak_frame(ranges: Vec<NakRange>) -> Packet {
        let ctrl = ControlRepr::Nak(NakRepr {
            requester: Ipv4Address::new(10, 0, 0, 8),
            requester_port: 47_000,
            ranges,
        })
        .emit_packet(exp());
        let repr = MmtRepr::parse(&ctrl).unwrap();
        Packet::new(build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 8]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &repr,
            &ctrl[repr.header_len()..],
        ))
    }

    fn setup(capacity: usize) -> (Simulator, mmt_netsim::NodeId, mmt_netsim::NodeId) {
        let mut sim = Simulator::new(1);
        let buf = sim.add_node(
            "dtn1",
            Box::new(RetransmitBuffer::with_defaults(
                exp(),
                Ipv4Address::new(10, 0, 0, 5),
                1_000_000_000,
                capacity,
            )),
        );
        let wan = sim.add_node("wan", Box::new(Sink));
        sim.add_oneway(
            buf,
            PORT_WAN,
            wan,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
        );
        (sim, buf, wan)
    }

    #[test]
    fn upgrades_and_stores_data_packets() {
        let (mut sim, buf, wan) = setup(1 << 20);
        for i in 0..5 {
            sim.inject(Time::from_micros(i), buf, PORT_DAQ, sensor_frame(i));
        }
        sim.run();
        let got = sim.local_deliveries(wan);
        assert_eq!(got.len(), 5);
        for (i, (_, pkt)) in got.iter().enumerate() {
            let repr = ParsedPacket::parse(pkt.bytes.clone(), 0)
                .mmt_repr()
                .unwrap();
            assert_eq!(repr.sequence(), Some(i as u64));
            assert!(repr.features.contains(Features::RETRANSMIT));
            assert_eq!(
                repr.retransmit().unwrap().source,
                Ipv4Address::new(10, 0, 0, 5)
            );
        }
        let b = sim.node_as::<RetransmitBuffer>(buf).unwrap();
        assert_eq!(b.stored_count(), 5);
        assert_eq!(b.stats.forwarded, 5);
    }

    #[test]
    fn serves_naks_from_store() {
        let (mut sim, buf, wan) = setup(1 << 20);
        for i in 0..10 {
            sim.inject(Time::from_micros(i), buf, PORT_DAQ, sensor_frame(i));
        }
        sim.run();
        let before = sim.local_deliveries(wan).len();
        // NAK seqs 2..=4 and 7 from the WAN side.
        sim.inject(
            sim.now(),
            buf,
            PORT_WAN,
            nak_frame(vec![
                NakRange { first: 2, last: 4 },
                NakRange { first: 7, last: 7 },
            ]),
        );
        sim.run();
        let got = sim.local_deliveries(wan);
        assert_eq!(got.len(), before + 4);
        // Retransmitted copies are the stored upgraded frames with the
        // right sequence numbers.
        let reseqs: Vec<u64> = got[before..]
            .iter()
            .map(|(_, p)| {
                ParsedPacket::parse(p.bytes.clone(), 0)
                    .mmt_repr()
                    .unwrap()
                    .sequence()
                    .unwrap()
            })
            .collect();
        assert_eq!(reseqs, vec![2, 3, 4, 7]);
        let b = sim.node_as::<RetransmitBuffer>(buf).unwrap();
        assert_eq!(b.stats.naks_received, 1);
        assert_eq!(b.stats.retransmitted, 4);
        assert_eq!(b.stats.nak_misses, 0);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        // Each upgraded frame is ~300+ bytes; capacity for ~3.
        let (mut sim, buf, _) = setup(1_000);
        for i in 0..10 {
            sim.inject(Time::from_micros(i), buf, PORT_DAQ, sensor_frame(i));
        }
        sim.run();
        let b = sim.node_as::<RetransmitBuffer>(buf).unwrap();
        assert!(b.stored_count() <= 3, "{}", b.stored_count());
        assert!(b.stats.evicted >= 7);
        // NAK for an evicted seq is a miss.
        sim.inject(
            sim.now(),
            buf,
            PORT_WAN,
            nak_frame(vec![NakRange { first: 0, last: 0 }]),
        );
        sim.run();
        let b = sim.node_as::<RetransmitBuffer>(buf).unwrap();
        assert_eq!(b.stats.nak_misses, 1);
    }

    #[test]
    fn retx_holdoff_suppresses_nak_storm() {
        let mut sim = Simulator::new(1);
        let buf = sim.add_node(
            "dtn1",
            Box::new(
                RetransmitBuffer::with_defaults(
                    exp(),
                    Ipv4Address::new(10, 0, 0, 5),
                    1_000_000_000,
                    1 << 20,
                )
                .with_retx_holdoff(Time::from_millis(2)),
            ),
        );
        let wan = sim.add_node("wan", Box::new(Sink));
        sim.add_oneway(
            buf,
            PORT_WAN,
            wan,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
        );
        for i in 0..5 {
            sim.inject(Time::from_micros(i), buf, PORT_DAQ, sensor_frame(i));
        }
        sim.run();
        let before = sim.local_deliveries(wan).len();
        // A storm: the same NAK three times within the holdoff window,
        // then once after it expires.
        for t_us in [100u64, 200, 300] {
            sim.inject(
                Time::from_micros(t_us),
                buf,
                PORT_WAN,
                nak_frame(vec![NakRange { first: 2, last: 3 }]),
            );
        }
        sim.inject(
            Time::from_millis(5),
            buf,
            PORT_WAN,
            nak_frame(vec![NakRange { first: 2, last: 3 }]),
        );
        sim.run();
        let b = sim.node_as::<RetransmitBuffer>(buf).unwrap();
        assert_eq!(b.stats.naks_received, 4);
        assert_eq!(b.stats.retransmitted, 4, "first burst + post-holdoff retry");
        assert_eq!(b.stats.retx_suppressed, 4, "two storm repeats suppressed");
        assert_eq!(sim.local_deliveries(wan).len(), before + 4);
    }

    fn mode_change_frame(mc: ModeChangeRepr) -> Packet {
        let ctrl = ControlRepr::ModeChange(mc).emit_packet(exp());
        let repr = MmtRepr::parse(&ctrl).unwrap();
        let mut pkt = Packet::new(build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 9]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &repr,
            &ctrl[repr.header_len()..],
        ));
        pkt.meta.control = true;
        pkt
    }

    #[test]
    fn crash_loses_store_and_restart_resumes_sequencing() {
        let (mut sim, buf, wan) = setup(1 << 20);
        for i in 0..5 {
            sim.inject(Time::from_micros(i), buf, PORT_DAQ, sensor_frame(i));
        }
        sim.schedule_crash(buf, Time::from_micros(100), Some(Time::from_micros(200)));
        // Post-restart traffic.
        for i in 5..8 {
            sim.inject(Time::from_micros(300 + i), buf, PORT_DAQ, sensor_frame(i));
        }
        // NAK for a pre-crash sequence arrives after the restart: the
        // store is gone, so it must be a miss, not a retransmission.
        sim.inject(
            Time::from_micros(400),
            buf,
            PORT_WAN,
            nak_frame(vec![NakRange { first: 2, last: 2 }]),
        );
        sim.run();
        let b = sim.node_as::<RetransmitBuffer>(buf).unwrap();
        assert_eq!(b.stats.nak_misses, 1);
        assert_eq!(b.stats.retransmitted, 0);
        assert_eq!(b.stored_count(), 3, "only post-restart packets retained");
        // The sequence cursor survives the crash: post-restart packets
        // continue 5, 6, 7 — no reuse of already-issued numbers.
        let seqs: Vec<u64> = sim
            .local_deliveries(wan)
            .iter()
            .map(|(_, p)| {
                ParsedPacket::parse(p.bytes.clone(), 0)
                    .mmt_repr()
                    .unwrap()
                    .sequence()
                    .unwrap()
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Highwater was reached just before the crash: all 5 pre-crash
        // upgraded frames resident at once.
        let per = sim.local_deliveries(wan)[0].1.len() as u64;
        assert_eq!(b.stats.occupancy_highwater_bytes, 5 * per);
    }

    #[test]
    fn mode_change_engages_duplication_and_rehomes_source() {
        let (mut sim, buf, wan) = setup(1 << 20);
        sim.inject(Time::from_micros(1), buf, PORT_DAQ, sensor_frame(0));
        let base = Features::SEQUENCE
            | Features::RETRANSMIT
            | Features::TIMELINESS
            | Features::AGE
            | Features::ACK_NAK;
        sim.inject(
            Time::from_micros(10),
            buf,
            PORT_WAN,
            mode_change_frame(ModeChangeRepr {
                config_id: 1,
                features: base | Features::DUPLICATED,
                retransmit_source: Ipv4Address::new(10, 0, 0, 6),
                retransmit_port: 47_001,
                window: 0,
            }),
        );
        sim.inject(Time::from_micros(20), buf, PORT_DAQ, sensor_frame(1));
        sim.run();
        let got = sim.local_deliveries(wan);
        // Packet 0 arrives singly; packet 1 arrives twice (mirror copy).
        assert_eq!(got.len(), 3);
        let reprs: Vec<_> = got
            .iter()
            .map(|(_, p)| ParsedPacket::parse(p.bytes.clone(), 0).mmt_repr().unwrap())
            .collect();
        assert_eq!(reprs[0].sequence(), Some(0));
        assert_eq!(
            reprs[0].retransmit().unwrap().source,
            Ipv4Address::new(10, 0, 0, 5)
        );
        // Both twins of packet 1 carry the re-homed source and the
        // DUPLICATED mode bit (the bit marks the stream's mode, not which
        // copy is the mirror); packet 0 predates the change.
        assert!(!reprs[0].features.contains(Features::DUPLICATED));
        assert_eq!(reprs[1].sequence(), Some(1));
        assert_eq!(reprs[2].sequence(), Some(1));
        for r in &reprs[1..] {
            assert_eq!(
                r.retransmit().unwrap().source,
                Ipv4Address::new(10, 0, 0, 6)
            );
            assert!(r.features.contains(Features::DUPLICATED));
        }
        let b = sim.node_as::<RetransmitBuffer>(buf).unwrap();
        assert_eq!(b.stats.mode_changes, 1);
        assert_eq!(b.stats.mirrored, 1);
    }

    #[test]
    fn credits_are_stamped_control_plane() {
        let mut sim = Simulator::new(1);
        let buf = sim.add_node(
            "dtn1",
            Box::new(RetransmitBuffer::new(
                exp(),
                BorderConfig {
                    daq_port: PORT_DAQ,
                    wan_port: PORT_WAN,
                    retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
                    deadline_budget_ns: 1_000_000,
                    notify_addr: Ipv4Address::new(10, 0, 0, 5),
                    priority_class: None,
                },
                1 << 20,
                Some(CreditConfig {
                    grant: 16,
                    interval: Time::from_millis(1),
                }),
            )),
        );
        let sensor_side = sim.add_node("sensor", Box::new(Sink));
        sim.add_oneway(
            buf,
            PORT_DAQ,
            sensor_side,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
        );
        sim.run_until(Time::from_micros(500));
        let got = sim.local_deliveries(sensor_side);
        assert!(!got.is_empty());
        for (_, pkt) in got {
            assert!(pkt.meta.control, "credits must carry the control flag");
        }
    }

    #[test]
    fn credit_generation_is_periodic() {
        let mut sim = Simulator::new(1);
        let buf = sim.add_node(
            "dtn1",
            Box::new(RetransmitBuffer::new(
                exp(),
                BorderConfig {
                    daq_port: PORT_DAQ,
                    wan_port: PORT_WAN,
                    retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
                    deadline_budget_ns: 1_000_000,
                    notify_addr: Ipv4Address::new(10, 0, 0, 5),
                    priority_class: None,
                },
                1 << 20,
                Some(CreditConfig {
                    grant: 16,
                    interval: Time::from_millis(1),
                }),
            )),
        );
        let sensor_side = sim.add_node("sensor", Box::new(Sink));
        sim.add_oneway(
            buf,
            PORT_DAQ,
            sensor_side,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
        );
        // Run past t = 5 ms so the grant emitted at 5 ms finishes its
        // (nanoseconds of) link serialization and arrives.
        sim.run_until(Time::from_micros(5_500));
        let got = sim.local_deliveries(sensor_side);
        // Grants at t=0,1,2,3,4,5 ms.
        assert_eq!(got.len(), 6, "{}", got.len());
        let parsed = ParsedPacket::parse(got[0].1.bytes.clone(), 0);
        let off = parsed.layers.mmt_offset().unwrap();
        let (_, ctrl) = ControlRepr::parse_packet(&parsed.bytes[off..]).unwrap();
        match ctrl {
            ControlRepr::Backpressure(bp) => assert_eq!(bp.window, 16),
            other => panic!("expected backpressure, got {other:?}"),
        }
    }
}
