//! Sequence-space bookkeeping: dedup, gap detection, missing ranges.

use mmt_wire::mmt::NakRange;
use std::collections::BTreeMap;

/// Tracks which sequence numbers have been received.
///
/// Stores received sequence space as merged `[start, end)` intervals, so
/// memory stays proportional to the number of *gaps*, not packets.
#[derive(Debug, Clone, Default)]
pub struct SeqTracker {
    /// Merged received ranges: start → end (exclusive).
    ranges: BTreeMap<u64, u64>,
    /// How many `record` calls hit an already-received sequence.
    duplicate_hits: u64,
}

impl SeqTracker {
    /// An empty tracker.
    pub fn new() -> SeqTracker {
        SeqTracker::default()
    }

    /// Record a sequence number. Returns `true` if new, `false` if a
    /// duplicate.
    pub fn record(&mut self, seq: u64) -> bool {
        // Find a range containing or adjacent to seq.
        if self.contains(seq) {
            self.duplicate_hits += 1;
            return false;
        }
        // End-exclusive bound. Sequence space is allocated from a
        // 0-based counter, so `seq` never reaches u64::MAX in practice;
        // saturating keeps the interval invariants intact if it did.
        let seq_end = seq.saturating_add(1);
        let prev = self
            .ranges
            .range(..=seq)
            .next_back()
            .map(|(&s, &e)| (s, e))
            .filter(|&(_, e)| e == seq);
        let next = self
            .ranges
            .range(seq_end..)
            .next()
            .map(|(&s, &e)| (s, e))
            .filter(|&(s, _)| s == seq_end);
        match (prev, next) {
            (Some((ps, _)), Some((ns, ne))) => {
                self.ranges.remove(&ns);
                self.ranges.insert(ps, ne);
            }
            (Some((ps, _)), None) => {
                self.ranges.insert(ps, seq_end);
            }
            (None, Some((ns, ne))) => {
                self.ranges.remove(&ns);
                self.ranges.insert(seq, ne);
            }
            (None, None) => {
                self.ranges.insert(seq, seq_end);
            }
        }
        true
    }

    /// Whether `seq` has been received.
    pub fn contains(&self, seq: u64) -> bool {
        self.ranges
            .range(..=seq)
            .next_back()
            .is_some_and(|(&s, &e)| seq >= s && seq < e)
    }

    /// The highest received sequence number, if any.
    pub fn highest(&self) -> Option<u64> {
        self.ranges.iter().next_back().map(|(_, &e)| e - 1)
    }

    /// Count of distinct sequence numbers received.
    pub fn received_count(&self) -> u64 {
        self.ranges.iter().map(|(&s, &e)| e - s).sum()
    }

    /// How many `record` calls were suppressed as duplicates (fault
    /// injection can multiply these; the tracker is the dedup authority).
    pub fn duplicate_hits(&self) -> u64 {
        self.duplicate_hits
    }

    /// Number of gaps (missing ranges at or below the highest received
    /// sequence). Sequence space starts at 0 — a stream whose first
    /// packets were lost has a *leading* gap.
    pub fn gap_count(&self) -> usize {
        let leading = usize::from(self.ranges.keys().next().is_some_and(|&s| s > 0));
        self.ranges.len().saturating_sub(1) + leading
    }

    /// Missing ranges below the highest received sequence number, capped
    /// at `max_ranges` (NAK messages carry a bounded list). Includes the
    /// leading gap `[0, first-1]` when the first received sequence is not
    /// 0 — streams are numbered from 0, so those packets were lost too.
    pub fn missing_ranges(&self, max_ranges: usize) -> Vec<NakRange> {
        let mut out = Vec::new();
        let mut prev_end: Option<u64> = Some(0);
        for (&s, &e) in &self.ranges {
            if let Some(pe) = prev_end {
                if pe < s {
                    if out.len() >= max_ranges {
                        break;
                    }
                    out.push(NakRange {
                        first: pe,
                        last: s - 1,
                    });
                }
            }
            prev_end = Some(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_arrival_is_one_range() {
        let mut t = SeqTracker::new();
        for s in 0..100 {
            assert!(t.record(s));
        }
        assert_eq!(t.received_count(), 100);
        assert_eq!(t.gap_count(), 0);
        assert!(t.missing_ranges(16).is_empty());
        assert_eq!(t.highest(), Some(99));
    }

    #[test]
    fn duplicates_detected() {
        let mut t = SeqTracker::new();
        assert!(t.record(5));
        assert!(!t.record(5));
        assert!(t.contains(5));
        assert!(!t.contains(4));
        assert_eq!(t.received_count(), 1);
        assert_eq!(t.duplicate_hits(), 1);
        assert!(!t.record(5));
        assert_eq!(t.duplicate_hits(), 2);
    }

    #[test]
    fn gaps_reported_as_ranges() {
        let mut t = SeqTracker::new();
        for s in [0u64, 1, 2, 5, 6, 10] {
            t.record(s);
        }
        let missing = t.missing_ranges(16);
        assert_eq!(
            missing,
            vec![
                NakRange { first: 3, last: 4 },
                NakRange { first: 7, last: 9 }
            ]
        );
        assert_eq!(t.gap_count(), 2);
        // Filling a gap merges ranges.
        t.record(3);
        t.record(4);
        assert_eq!(t.gap_count(), 1);
        assert_eq!(t.missing_ranges(16), vec![NakRange { first: 7, last: 9 }]);
        t.record(8);
        assert_eq!(
            t.missing_ranges(16),
            vec![
                NakRange { first: 7, last: 7 },
                NakRange { first: 9, last: 9 }
            ]
        );
    }

    #[test]
    fn missing_ranges_capped() {
        let mut t = SeqTracker::new();
        for s in (0..100).step_by(2) {
            t.record(s); // every odd number missing
        }
        let missing = t.missing_ranges(5);
        assert_eq!(missing.len(), 5);
        assert_eq!(missing[0], NakRange { first: 1, last: 1 });
    }

    #[test]
    fn out_of_order_merges_correctly() {
        let mut t = SeqTracker::new();
        t.record(10);
        t.record(8);
        t.record(9); // joins both neighbours
        assert_eq!(t.gap_count(), 1, "leading gap [0,7] counts");
        assert_eq!(t.missing_ranges(16), vec![NakRange { first: 0, last: 7 }]);
        assert_eq!(t.received_count(), 3);
        assert_eq!(t.highest(), Some(10));
        t.record(0);
        assert_eq!(t.missing_ranges(16), vec![NakRange { first: 1, last: 7 }]);
    }

    #[test]
    fn empty_tracker() {
        let t = SeqTracker::new();
        assert_eq!(t.highest(), None);
        assert_eq!(t.received_count(), 0);
        assert!(t.missing_ranges(4).is_empty());
        assert!(!t.contains(0));
    }
}
