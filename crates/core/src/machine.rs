//! The sans-io state-machine contract.
//!
//! Every protocol node in this crate is a pure state machine: it consumes
//! an [`Input`] at a caller-supplied instant and pushes [`Output`]s — and
//! that is *all* it can do. No clocks (time arrives as the `now`
//! argument), no sockets (frames arrive as inputs and leave as outputs),
//! no threads, no sleeping (a machine that needs the future asks for it
//! with [`Output::WakeAt`]). The same machines therefore run unchanged
//! under two drivers:
//!
//! * the virtual-time simulator (`mmt-netsim`), whose [`Node`] hooks are
//!   thin adapters over [`Machine::poll`] (see [`step`]), and
//! * the real-socket runtime (`mmt-io`), which feeds UDP datagrams and a
//!   monotonic clock into the identical `poll` functions.
//!
//! Because the adapter replays outputs in exactly the order the machine
//! pushed them, the simulator's event stream — and with it every
//! determinism digest — is byte-identical to a direct-`Context`
//! implementation.

use mmt_netsim::{Context, Packet, PortId, Time, TimerToken};

/// One event presented to a state machine.
#[derive(Debug)]
pub enum Input {
    /// The node has been started (driver boot, `t = 0` in the sim).
    Start,
    /// A frame arrived on `port`.
    Frame {
        /// The ingress port.
        port: PortId,
        /// The frame, with driver metadata.
        pkt: Packet,
    },
    /// A previously requested [`Output::WakeAt`] instant has been reached.
    Timer {
        /// The token the machine passed when requesting the wake-up.
        token: TimerToken,
    },
    /// The node has been restarted after a crash.
    Restart,
}

/// One effect requested by a state machine. The driver performs these in
/// the order they were pushed.
#[derive(Debug)]
pub enum Output {
    /// Transmit `pkt` out of `port`.
    Transmit {
        /// The egress port.
        port: PortId,
        /// The frame to send.
        pkt: Packet,
    },
    /// Deliver `Input::Timer { token }` at (or as soon as possible after)
    /// the absolute instant `at`.
    WakeAt {
        /// The absolute wake-up instant (same clock as `poll`'s `now`).
        at: Time,
        /// Echoed back in the matching [`Input::Timer`].
        token: TimerToken,
    },
    /// Hand `pkt` to the local application (endpoint delivery).
    DeliverLocal {
        /// The delivered frame.
        pkt: Packet,
    },
}

/// A strictly sans-io protocol state machine.
///
/// `poll` is the *only* way time or packets reach the machine, and `out`
/// is the only way effects leave it. Implementations must not read
/// clocks, touch sockets, or spawn threads — `mmt-lint` rule D2 enforces
/// this for every sim-critical crate.
pub trait Machine {
    /// Advance the machine: consume `input` at instant `now`, pushing any
    /// requested effects onto `out` in execution order.
    fn poll(&mut self, now: Time, input: Input, out: &mut Vec<Output>);

    /// The node lost power: volatile state is gone. No outputs — a dead
    /// node cannot transmit.
    fn crash(&mut self) {}

    /// The reusable output buffer driver adapters scratch into (so steady
    /// state allocates nothing). Implementations return a `Vec` field.
    fn outbox(&mut self) -> &mut Vec<Output>;
}

/// Replay buffered outputs into a simulator [`Context`], preserving
/// order. `WakeAt` converts back to a relative delay against the
/// context's current instant; an `at` in the past fires immediately
/// (delay zero).
pub fn replay(out: &mut Vec<Output>, ctx: &mut Context<'_>) {
    let now = ctx.now();
    for o in out.drain(..) {
        match o {
            Output::Transmit { port, pkt } => ctx.send(port, pkt),
            Output::WakeAt { at, token } => ctx.set_timer(at.saturating_sub(now), token),
            Output::DeliverLocal { pkt } => ctx.deliver_local(pkt),
        }
    }
}

/// Drive one machine step from a simulator callback: poll into the
/// machine's own outbox, then replay the outputs into `ctx`. The outbox
/// is taken and restored so its capacity is reused across events.
pub fn step<M: Machine + ?Sized>(m: &mut M, ctx: &mut Context<'_>, input: Input) {
    let mut out = std::mem::take(m.outbox());
    m.poll(ctx.now(), input, &mut out);
    replay(&mut out, ctx);
    *m.outbox() = out;
}
