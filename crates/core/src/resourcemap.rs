//! The in-network resource map and mode planner (§6, challenge 1).
//!
//! "We initially envisage having a map of in-network programmable
//! resources that DAQ workloads can use. This map is shared between
//! network operators — perhaps by piggy-backing on BGP messages — to
//! describe their programmable infrastructure and its capabilities."
//!
//! [`ResourceMap`] is that map; [`ModePlanner`] turns it into per-segment
//! mode assignments for a path (the "simple 3-mode setup that pre-supposes
//! knowledge of in-network resources at system start" of §5.3, made
//! data-driven); [`gossip_exchange`] simulates the map dissemination
//! between operators until every domain converges on the union.

use crate::mode::Mode;
use mmt_wire::Ipv4Address;
use std::collections::BTreeMap;

/// What a programmable element can do for DAQ flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Capability {
    /// Can rewrite MMT headers (mode transitions).
    HeaderRewrite,
    /// Hosts a retransmission buffer of the given capacity (bytes).
    RetransmitBuffer(u64),
    /// Can track/update age fields.
    AgeTracking,
    /// Can run timeliness checks and emit notifications.
    DeadlineCheck,
    /// Can duplicate streams to additional consumers.
    Duplication,
}

/// One advertised resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceEntry {
    /// The element's address.
    pub addr: Ipv4Address,
    /// Which operator domain advertises it.
    pub domain: &'static str,
    /// Its capabilities.
    pub capabilities: Vec<Capability>,
    /// RTT from the path's ingress to this element, ns (the planner
    /// prefers *nearer* buffers — the paper's "more 'recent' (lower RTT)
    /// retransmission buffer").
    pub rtt_from_source_ns: u64,
}

impl ResourceEntry {
    /// Whether this element hosts a retransmission buffer.
    pub fn buffer_capacity(&self) -> Option<u64> {
        self.capabilities.iter().find_map(|c| match c {
            Capability::RetransmitBuffer(n) => Some(*n),
            _ => None,
        })
    }

    /// Whether this element has a capability.
    pub fn has(&self, cap: Capability) -> bool {
        self.capabilities.contains(&cap)
    }
}

/// The map: resources keyed by address.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceMap {
    entries: BTreeMap<u32, ResourceEntry>,
}

impl ResourceMap {
    /// An empty map.
    pub fn new() -> ResourceMap {
        ResourceMap::default()
    }

    /// Advertise (or update) a resource.
    pub fn advertise(&mut self, entry: ResourceEntry) {
        self.entries.insert(entry.addr.to_u32(), entry);
    }

    /// All entries, ordered by address.
    pub fn entries(&self) -> impl Iterator<Item = &ResourceEntry> {
        self.entries.values()
    }

    /// Number of advertised resources.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another map into this one (newer advertisement wins on
    /// address collision — both maps here are snapshots, so "newer" is
    /// the incoming one).
    pub fn merge(&mut self, other: &ResourceMap) -> bool {
        let mut changed = false;
        for (k, v) in &other.entries {
            if self.entries.get(k) != Some(v) {
                self.entries.insert(*k, v.clone());
                changed = true;
            }
        }
        changed
    }

    /// The nearest (lowest-RTT) retransmission buffer at or beyond
    /// `min_rtt_ns` from the source.
    pub fn nearest_buffer(&self, min_rtt_ns: u64) -> Option<&ResourceEntry> {
        self.entries
            .values()
            .filter(|e| e.buffer_capacity().is_some() && e.rtt_from_source_ns >= min_rtt_ns)
            .min_by_key(|e| e.rtt_from_source_ns)
    }
}

/// Plans per-segment modes for a path from the resource map.
#[derive(Debug, Clone)]
pub struct ModePlanner {
    map: ResourceMap,
}

/// A path segment the planner assigns a mode to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Inside the instrument's DAQ network.
    DaqNetwork,
    /// A WAN crossing with the given one-way delay budget, ns.
    Wan {
        /// One-way propagation, ns.
        one_way_ns: u64,
    },
    /// The destination campus/site network.
    Campus,
}

impl ModePlanner {
    /// Create a planner over a (converged) map.
    pub fn new(map: ResourceMap) -> ModePlanner {
        ModePlanner { map }
    }

    /// The map in use.
    pub fn map(&self) -> &ResourceMap {
        &self.map
    }

    /// Assign a mode to each segment of a path. DAQ segments ride
    /// unreliable (mode 1); WAN segments get the recoverable-loss mode
    /// anchored at the nearest advertised buffer; the final segment keeps
    /// the WAN mode with the destination timeliness check (mode 3).
    ///
    /// Returns `None` if a WAN segment has no reachable buffer — the
    /// planner refuses to promise reliability it cannot provide.
    pub fn plan(
        &self,
        segments: &[Segment],
        deadline_budget_ns: u64,
        notify: Ipv4Address,
        max_age_ns: u64,
    ) -> Option<Vec<Mode>> {
        let mut out = Vec::with_capacity(segments.len());
        for seg in segments {
            match seg {
                Segment::DaqNetwork => out.push(Mode::mode1_unreliable()),
                Segment::Wan { .. } => {
                    let buffer = self.map.nearest_buffer(0)?;
                    out.push(Mode::mode2_wan(
                        (buffer.addr, 47_000),
                        deadline_budget_ns,
                        notify,
                        max_age_ns,
                    ));
                }
                Segment::Campus => {
                    let buffer = self.map.nearest_buffer(0)?;
                    out.push(Mode::mode3_delivery(
                        (buffer.addr, 47_000),
                        deadline_budget_ns,
                        notify,
                        max_age_ns,
                    ));
                }
            }
        }
        Some(out)
    }
}

/// Simulate map dissemination between operator domains: each round, every
/// pair of adjacent domains exchanges maps; returns the number of rounds
/// until global convergence. `adjacency[i]` lists the neighbours of
/// domain `i`.
pub fn gossip_exchange(maps: &mut [ResourceMap], adjacency: &[Vec<usize>]) -> usize {
    assert_eq!(maps.len(), adjacency.len());
    let mut rounds = 0;
    loop {
        let mut changed = false;
        // Synchronous rounds: everyone sends their current map, merges
        // what they received.
        let snapshot: Vec<ResourceMap> = maps.to_vec();
        for (i, neighbours) in adjacency.iter().enumerate() {
            for &n in neighbours {
                if maps[i].merge(&snapshot[n]) {
                    changed = true;
                }
            }
        }
        if !changed {
            return rounds;
        }
        rounds += 1;
        assert!(rounds < 1_000, "gossip failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_wire::mmt::Features;

    fn buffer_entry(addr: Ipv4Address, domain: &'static str, rtt_ns: u64) -> ResourceEntry {
        ResourceEntry {
            addr,
            domain,
            capabilities: vec![
                Capability::HeaderRewrite,
                Capability::RetransmitBuffer(1 << 30),
                Capability::AgeTracking,
            ],
            rtt_from_source_ns: rtt_ns,
        }
    }

    #[test]
    fn nearest_buffer_prefers_low_rtt() {
        let mut map = ResourceMap::new();
        map.advertise(buffer_entry(
            Ipv4Address::new(10, 0, 0, 5),
            "esnet",
            1_000_000,
        ));
        map.advertise(buffer_entry(
            Ipv4Address::new(10, 1, 0, 5),
            "geant",
            50_000_000,
        ));
        let near = map.nearest_buffer(0).unwrap();
        assert_eq!(near.addr, Ipv4Address::new(10, 0, 0, 5));
        // Constrained to beyond 10 ms: the farther one.
        let far = map.nearest_buffer(10_000_000).unwrap();
        assert_eq!(far.addr, Ipv4Address::new(10, 1, 0, 5));
        assert_eq!(map.len(), 2);
        assert!(!map.is_empty());
    }

    #[test]
    fn capability_queries() {
        let e = buffer_entry(Ipv4Address::new(10, 0, 0, 5), "esnet", 0);
        assert_eq!(e.buffer_capacity(), Some(1 << 30));
        assert!(e.has(Capability::AgeTracking));
        assert!(!e.has(Capability::Duplication));
    }

    #[test]
    fn planner_assigns_pilot_modes() {
        let mut map = ResourceMap::new();
        map.advertise(buffer_entry(Ipv4Address::new(10, 0, 0, 5), "esnet", 1_000));
        let planner = ModePlanner::new(map);
        let plan = planner
            .plan(
                &[
                    Segment::DaqNetwork,
                    Segment::Wan {
                        one_way_ns: 25_000_000,
                    },
                    Segment::Campus,
                ],
                1_000_000_000,
                Ipv4Address::new(10, 0, 0, 9),
                500_000_000,
            )
            .unwrap();
        assert_eq!(plan.len(), 3);
        assert!(plan[0].features.is_empty());
        assert!(plan[1].features.contains(Features::RETRANSMIT));
        assert_eq!(
            plan[1].params.retransmit_source,
            Some((Ipv4Address::new(10, 0, 0, 5), 47_000))
        );
        assert_eq!(plan[2].name, "mode3-delivery");
    }

    #[test]
    fn planner_refuses_wan_without_buffer() {
        let planner = ModePlanner::new(ResourceMap::new());
        assert!(planner
            .plan(
                &[Segment::Wan { one_way_ns: 1 }],
                1,
                Ipv4Address::UNSPECIFIED,
                1
            )
            .is_none());
        // DAQ-only plans need no resources.
        assert!(planner
            .plan(&[Segment::DaqNetwork], 1, Ipv4Address::UNSPECIFIED, 1)
            .is_some());
    }

    #[test]
    fn gossip_converges_along_a_chain() {
        // Domains 0–3 in a line; only domain 0 and 3 advertise resources.
        let mut maps = vec![ResourceMap::new(); 4];
        maps[0].advertise(buffer_entry(Ipv4Address::new(10, 0, 0, 1), "d0", 0));
        maps[3].advertise(buffer_entry(Ipv4Address::new(10, 3, 0, 1), "d3", 0));
        let adjacency = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let rounds = gossip_exchange(&mut maps, &adjacency);
        // A 4-domain chain converges in ≤ 4 synchronous rounds.
        assert!((1..=4).contains(&rounds), "{rounds}");
        for m in &maps {
            assert_eq!(m.len(), 2, "every domain sees both resources");
        }
        // Idempotent afterwards.
        let again = gossip_exchange(&mut maps, &adjacency);
        assert_eq!(again, 0);
    }

    #[test]
    fn merge_reports_change() {
        let mut a = ResourceMap::new();
        let mut b = ResourceMap::new();
        b.advertise(buffer_entry(Ipv4Address::new(1, 1, 1, 1), "x", 5));
        assert!(a.merge(&b));
        assert!(!a.merge(&b), "second merge is a no-op");
    }
}
