//! Closed-loop mode adaptation.
//!
//! The paper's shape-shifting is not one-shot: "the network" observes each
//! segment and re-selects the mode when conditions change (§5.2, §6). This
//! module is that control loop distilled: a [`ModeController`] consumes
//! per-interval [`HealthSample`]s for one WAN segment and emits
//! [`ModeTransition`]s for the control plane to apply — degrade to
//! duplicated forwarding when loss spikes, re-home the retransmit source
//! when the named buffer dies, shed load when the buffer fills, and recover
//! only after a hysteresis interval of clean samples (no flapping).
//!
//! Everything is integer arithmetic on deterministic inputs, so a seeded
//! run replays byte-identically.

use crate::flowtable::ModeWord;
use mmt_wire::Ipv4Address;

/// Thresholds and hysteresis knobs for a [`ModeController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerConfig {
    /// EWMA smoothing shift: each sample contributes `1/2^shift` of the
    /// new value (`shift = 2` → quarter-weight samples).
    pub loss_ewma_shift: u32,
    /// Degrade (enable duplication) when the loss EWMA reaches this many
    /// parts per million.
    pub degrade_loss_ppm: u64,
    /// A sample only counts as *clean* for recovery once the EWMA has
    /// fallen back below this (must be `< degrade_loss_ppm` for real
    /// hysteresis).
    pub recover_loss_ppm: u64,
    /// Consecutive clean intervals required before recovering.
    pub recover_clean_intervals: u32,
    /// Consecutive intervals the primary retransmit buffer must be dead
    /// before re-homing to the standby.
    pub rehome_dead_intervals: u32,
    /// The standby retransmit source to re-home to, if any.
    pub standby: Option<(Ipv4Address, u16)>,
    /// Engage backpressure when buffer occupancy reaches this (bytes).
    pub shed_highwater_bytes: u64,
    /// Release backpressure once occupancy falls to this (bytes); must be
    /// `< shed_highwater_bytes` for real hysteresis.
    pub shed_lowwater_bytes: u64,
    /// Backpressure window (messages) handed out while shedding.
    pub shed_window: u32,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            loss_ewma_shift: 2,
            degrade_loss_ppm: 20_000, // 2 % loss
            recover_loss_ppm: 5_000,  // 0.5 %
            recover_clean_intervals: 4,
            rehome_dead_intervals: 2,
            standby: None,
            shed_highwater_bytes: 48 * 1024 * 1024,
            shed_lowwater_bytes: 16 * 1024 * 1024,
            shed_window: 64,
        }
    }
}

/// One interval's worth of observations for the controlled segment.
/// All packet/loss fields are *deltas over the interval*, not cumulative
/// totals; the sampler owns the subtraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSample {
    /// Packets offered to the WAN segment this interval.
    pub wan_tx: u64,
    /// Packets the segment lost (corruption, queue drops, flaps).
    pub wan_lost: u64,
    /// Receiver NAK cycles that exhausted their retry budget.
    pub nak_retries_exhausted: u64,
    /// Deliveries past their age bound / deadline notifications.
    pub deadline_misses: u64,
    /// Retransmit-buffer occupancy at sample time (bytes).
    pub buffer_occupancy_bytes: u64,
    /// Whether the primary retransmit buffer answered (is not crashed).
    pub primary_alive: bool,
}

/// A mode change the controller wants applied to the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeTransition {
    /// Loss EWMA crossed the degrade threshold (or hard failures showed
    /// up): enable DUPLICATED mirroring over the flapping path.
    Degrade,
    /// The segment has been clean for the hysteresis interval: drop back
    /// to plain recoverable-loss mode.
    Recover,
    /// The named retransmit buffer is dead: rewrite the stream's
    /// retransmit source to this live standby. Sticky — never reverted.
    ReHome {
        /// The standby buffer's address.
        source: Ipv4Address,
        /// The standby buffer's NAK service port.
        port: u16,
    },
    /// Buffer occupancy hit the high-watermark: engage a backpressure
    /// window of this many messages.
    Shed {
        /// Window, messages.
        window: u32,
    },
    /// Occupancy fell back to the low-watermark: release backpressure.
    Unshed,
}

impl ModeTransition {
    /// Stable label for metrics/trace (`kind` label values).
    pub fn kind(&self) -> &'static str {
        match self {
            ModeTransition::Degrade => "degrade",
            ModeTransition::Recover => "recover",
            ModeTransition::ReHome { .. } => "rehome",
            ModeTransition::Shed { .. } => "shed",
            ModeTransition::Unshed => "unshed",
        }
    }
}

/// Cumulative transition counts, for telemetry and flap-damping asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Degrade transitions emitted.
    pub degrades: u64,
    /// Recover transitions emitted.
    pub recovers: u64,
    /// Re-home transitions emitted (0 or 1 — sticky).
    pub rehomes: u64,
    /// Shed transitions emitted.
    pub sheds: u64,
    /// Unshed transitions emitted.
    pub unsheds: u64,
    /// Samples observed.
    pub samples: u64,
}

impl ControllerStats {
    /// Total transitions of any kind.
    pub fn transitions(&self) -> u64 {
        self.degrades + self.recovers + self.rehomes + self.sheds + self.unsheds
    }
}

/// The per-segment mode state machine. Feed it one [`HealthSample`] per
/// control interval via [`ModeController::observe`]; apply the returned
/// transitions in order.
///
/// The mutable state is one packed [`ModeWord`] — the same 8 bytes a
/// [`crate::FlowTable`] mode column stores per flow — so a controller can
/// be parked in a flow table between control intervals
/// ([`ModeController::word`] / [`ModeController::load_word`]) and this
/// struct carries only the logic.
#[derive(Debug)]
pub struct ModeController {
    config: ControllerConfig,
    word: ModeWord,
    stats: ControllerStats,
}

impl ModeController {
    /// A controller in the clean (mode-2) state.
    pub fn new(config: ControllerConfig) -> ModeController {
        ModeController {
            config,
            word: ModeWord::new(),
            stats: ControllerStats::default(),
        }
    }

    /// The configuration this controller runs with.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Whether the segment is currently in the degraded (duplicated) mode.
    pub fn is_degraded(&self) -> bool {
        self.word.degraded()
    }

    /// Whether the stream has been re-homed to the standby.
    pub fn is_rehomed(&self) -> bool {
        self.word.rehomed()
    }

    /// Whether backpressure shedding is currently engaged.
    pub fn is_shedding(&self) -> bool {
        self.word.shedding()
    }

    /// Current smoothed loss rate, parts per million.
    pub fn loss_ewma_ppm(&self) -> u64 {
        self.word.loss_ewma_ppm()
    }

    /// The packed mutable state, ready to park in a flow-table column.
    pub fn word(&self) -> ModeWord {
        self.word
    }

    /// Restore mutable state previously saved with [`ModeController::word`].
    pub fn load_word(&mut self, word: ModeWord) {
        self.word = word;
    }

    /// Cumulative transition counts.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Consume one interval's observations; returns the transitions to
    /// apply (possibly empty, at most one per transition family).
    pub fn observe(&mut self, s: &HealthSample) -> Vec<ModeTransition> {
        self.stats.samples += 1;
        let mut out = Vec::new();

        // Loss EWMA in ppm. A zero-traffic interval contributes a zero
        // sample: an idle link is not evidence of loss.
        let sample_ppm = s
            .wan_lost
            .saturating_mul(1_000_000)
            .checked_div(s.wan_tx)
            .unwrap_or(0);
        let shift = self.config.loss_ewma_shift;
        self.word.set_loss_ewma_ppm(
            (self.word.loss_ewma_ppm() * ((1u64 << shift) - 1) + sample_ppm) >> shift,
        );

        // Degrade / recover with hysteresis: hard failures (retry
        // exhaustion, deadline misses) trip the degrade immediately and
        // reset the clean streak.
        let hard_failure = s.nak_retries_exhausted > 0 || s.deadline_misses > 0;
        let lossy = self.word.loss_ewma_ppm() >= self.config.degrade_loss_ppm;
        let clean = self.word.loss_ewma_ppm() < self.config.recover_loss_ppm && !hard_failure;
        if !self.word.degraded() {
            if lossy || hard_failure {
                self.word.set_degraded(true);
                self.word.set_clean_intervals(0);
                self.stats.degrades += 1;
                out.push(ModeTransition::Degrade);
            }
        } else if clean {
            self.word
                .set_clean_intervals(self.word.clean_intervals() + 1);
            if self.word.clean_intervals() >= self.config.recover_clean_intervals {
                self.word.set_degraded(false);
                self.word.set_clean_intervals(0);
                self.stats.recovers += 1;
                out.push(ModeTransition::Recover);
            }
        } else {
            self.word.set_clean_intervals(0);
        }

        // Re-home: sticky, standby-gated, and debounced — a single missed
        // health probe must not move the stream.
        if s.primary_alive {
            self.word.set_dead_intervals(0);
        } else {
            self.word.set_dead_intervals(self.word.dead_intervals() + 1);
            if !self.word.rehomed()
                && self.word.dead_intervals() >= self.config.rehome_dead_intervals
            {
                if let Some((source, port)) = self.config.standby {
                    self.word.set_rehomed(true);
                    self.stats.rehomes += 1;
                    out.push(ModeTransition::ReHome { source, port });
                }
            }
        }

        // Shed / unshed on the occupancy watermarks.
        if !self.word.shedding() {
            if s.buffer_occupancy_bytes >= self.config.shed_highwater_bytes {
                self.word.set_shedding(true);
                self.stats.sheds += 1;
                out.push(ModeTransition::Shed {
                    window: self.config.shed_window,
                });
            }
        } else if s.buffer_occupancy_bytes <= self.config.shed_lowwater_bytes {
            self.word.set_shedding(false);
            self.stats.unsheds += 1;
            out.push(ModeTransition::Unshed);
        }

        out
    }

    /// Export transition counters and the current loss EWMA into a metric
    /// registry, labeled by controlled `segment`.
    pub fn export_metrics(&self, segment: &str, reg: &mut mmt_telemetry::MetricRegistry) {
        reg.describe(
            "mmt_mode_transitions_total",
            "Mode transitions emitted by the adaptation controller, by kind.",
        );
        for (kind, value) in [
            ("degrade", self.stats.degrades),
            ("recover", self.stats.recovers),
            ("rehome", self.stats.rehomes),
            ("shed", self.stats.sheds),
            ("unshed", self.stats.unsheds),
        ] {
            reg.counter_add(
                "mmt_mode_transitions_total",
                &[("segment", segment), ("kind", kind)],
                value,
            );
        }
        reg.describe(
            "mmt_controller_loss_ewma_ppm",
            "Smoothed segment loss rate seen by the mode controller (ppm).",
        );
        reg.gauge_set(
            "mmt_controller_loss_ewma_ppm",
            &[("segment", segment)],
            self.word.loss_ewma_ppm() as f64,
        );
        reg.describe(
            "mmt_controller_samples_total",
            "Health samples consumed by the mode controller.",
        );
        reg.counter_add(
            "mmt_controller_samples_total",
            &[("segment", segment)],
            self.stats.samples,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            loss_ewma_shift: 1, // fast EWMA so tests need few samples
            degrade_loss_ppm: 20_000,
            recover_loss_ppm: 5_000,
            recover_clean_intervals: 3,
            rehome_dead_intervals: 2,
            standby: Some((Ipv4Address::new(10, 0, 0, 6), 47_001)),
            shed_highwater_bytes: 1_000,
            shed_lowwater_bytes: 400,
            shed_window: 16,
        }
    }

    fn clean_sample() -> HealthSample {
        HealthSample {
            wan_tx: 1_000,
            primary_alive: true,
            ..HealthSample::default()
        }
    }

    fn lossy_sample(lost: u64) -> HealthSample {
        HealthSample {
            wan_tx: 1_000,
            wan_lost: lost,
            primary_alive: true,
            ..HealthSample::default()
        }
    }

    #[test]
    fn degrades_on_loss_and_recovers_after_hysteresis() {
        let mut c = ModeController::new(cfg());
        // 3 % loss with half-weight samples: EWMA is 15 000 ppm after one
        // sample (below the 20 000 degrade line), 22 500 after two.
        assert!(c.observe(&lossy_sample(30)).is_empty());
        assert_eq!(c.observe(&lossy_sample(30)), vec![ModeTransition::Degrade]);
        assert!(c.is_degraded());
        // Repeating the lossy condition does not re-emit the transition.
        assert!(c.observe(&lossy_sample(30)).is_empty());
        // Clean samples: EWMA decays below the recover line, then the
        // controller still waits for 3 consecutive clean intervals.
        let mut transitions = Vec::new();
        for _ in 0..10 {
            transitions.extend(c.observe(&clean_sample()));
            if !c.is_degraded() {
                break;
            }
        }
        assert_eq!(transitions, vec![ModeTransition::Recover]);
        assert!(!c.is_degraded());
        assert_eq!(c.stats().degrades, 1);
        assert_eq!(c.stats().recovers, 1);
    }

    #[test]
    fn hard_failures_trip_degrade_immediately() {
        let mut c = ModeController::new(cfg());
        let s = HealthSample {
            wan_tx: 1_000,
            nak_retries_exhausted: 1,
            primary_alive: true,
            ..HealthSample::default()
        };
        assert_eq!(c.observe(&s), vec![ModeTransition::Degrade]);
        // A deadline miss mid-recovery resets the clean streak.
        assert!(c.observe(&clean_sample()).is_empty());
        assert!(c.observe(&clean_sample()).is_empty());
        let miss = HealthSample {
            wan_tx: 1_000,
            deadline_misses: 1,
            primary_alive: true,
            ..HealthSample::default()
        };
        assert!(c.observe(&miss).is_empty());
        // Needs the full clean streak again.
        assert!(c.observe(&clean_sample()).is_empty());
        assert!(c.observe(&clean_sample()).is_empty());
        assert_eq!(c.observe(&clean_sample()), vec![ModeTransition::Recover]);
    }

    #[test]
    fn flapping_loss_is_hysteresis_damped() {
        let mut c = ModeController::new(cfg());
        // Alternate heavy-loss and clean intervals for 100 rounds: the
        // clean streak never reaches 3, so the controller degrades once
        // and stays put instead of flapping 50 times.
        for _ in 0..50 {
            c.observe(&lossy_sample(100));
            c.observe(&clean_sample());
        }
        assert!(c.is_degraded());
        assert_eq!(c.stats().degrades, 1);
        assert_eq!(c.stats().recovers, 0);
        assert!(c.stats().transitions() <= 2);
    }

    #[test]
    fn rehome_is_debounced_and_sticky() {
        let mut c = ModeController::new(cfg());
        // One missed probe: no move.
        let dead = HealthSample {
            wan_tx: 100,
            primary_alive: false,
            ..HealthSample::default()
        };
        assert!(c.observe(&dead).is_empty());
        assert!(c.observe(&clean_sample()).is_empty());
        // Two consecutive dead intervals: re-home exactly once.
        assert!(c.observe(&dead).is_empty());
        assert_eq!(
            c.observe(&dead),
            vec![ModeTransition::ReHome {
                source: Ipv4Address::new(10, 0, 0, 6),
                port: 47_001,
            }]
        );
        assert!(c.is_rehomed());
        // Still dead, and even a primary resurrection: no further moves.
        assert!(c.observe(&dead).is_empty());
        assert!(c.observe(&clean_sample()).is_empty());
        assert!(c.is_rehomed());
        assert_eq!(c.stats().rehomes, 1);
    }

    #[test]
    fn rehome_requires_a_standby() {
        let mut c = ModeController::new(ControllerConfig {
            standby: None,
            ..cfg()
        });
        let dead = HealthSample {
            primary_alive: false,
            ..HealthSample::default()
        };
        for _ in 0..10 {
            assert!(c.observe(&dead).is_empty());
        }
        assert!(!c.is_rehomed());
    }

    #[test]
    fn shed_watermarks_have_hysteresis() {
        let mut c = ModeController::new(cfg());
        let occ = |bytes| HealthSample {
            wan_tx: 100,
            buffer_occupancy_bytes: bytes,
            primary_alive: true,
            ..HealthSample::default()
        };
        assert!(c.observe(&occ(999)).is_empty());
        assert_eq!(
            c.observe(&occ(1_000)),
            vec![ModeTransition::Shed { window: 16 }]
        );
        assert!(c.is_shedding());
        // Between the watermarks: hold.
        assert!(c.observe(&occ(700)).is_empty());
        assert!(c.observe(&occ(1_500)).is_empty());
        // At the low-watermark: release.
        assert_eq!(c.observe(&occ(400)), vec![ModeTransition::Unshed]);
        assert!(!c.is_shedding());
        assert_eq!(c.stats().sheds, 1);
        assert_eq!(c.stats().unsheds, 1);
    }

    #[test]
    fn idle_intervals_do_not_count_as_loss() {
        let mut c = ModeController::new(cfg());
        let idle = HealthSample {
            wan_tx: 0,
            wan_lost: 0,
            primary_alive: true,
            ..HealthSample::default()
        };
        for _ in 0..20 {
            assert!(c.observe(&idle).is_empty());
        }
        assert!(!c.is_degraded());
        assert_eq!(c.loss_ewma_ppm(), 0);
    }

    #[test]
    fn transition_kinds_are_stable_labels() {
        assert_eq!(ModeTransition::Degrade.kind(), "degrade");
        assert_eq!(ModeTransition::Recover.kind(), "recover");
        assert_eq!(
            ModeTransition::ReHome {
                source: Ipv4Address::UNSPECIFIED,
                port: 0
            }
            .kind(),
            "rehome"
        );
        assert_eq!(ModeTransition::Shed { window: 1 }.kind(), "shed");
        assert_eq!(ModeTransition::Unshed.kind(), "unshed");
    }

    #[test]
    fn word_round_trip_preserves_hysteresis_streaks() {
        let mut parked = ModeController::new(cfg());
        let mut resident = ModeController::new(cfg());
        // Drive both controllers with the same sample stream, but park the
        // first one's state in a ModeWord between every interval, as a
        // flow-table mode column would.
        let drive = |c: &mut ModeController, s: &HealthSample| c.observe(s);
        let mut samples = vec![lossy_sample(30); 3];
        samples.extend(vec![clean_sample(); 6]);
        for s in &samples {
            let word = parked.word();
            let mut thawed = ModeController::new(cfg());
            thawed.load_word(word);
            let a = drive(&mut thawed, s);
            parked.load_word(thawed.word());
            let b = drive(&mut resident, s);
            assert_eq!(a, b, "parked and resident controllers diverged");
        }
        assert_eq!(parked.word(), resident.word());
        assert_eq!(parked.loss_ewma_ppm(), resident.loss_ewma_ppm());
        assert!(!resident.is_degraded(), "clean streak must have recovered");
    }

    #[test]
    fn metrics_export_is_deterministic() {
        let mut c = ModeController::new(cfg());
        c.observe(&lossy_sample(100));
        c.observe(&lossy_sample(100));
        let mut a = mmt_telemetry::MetricRegistry::new();
        let mut b = mmt_telemetry::MetricRegistry::new();
        c.export_metrics("wan", &mut a);
        c.export_metrics("wan", &mut b);
        let text = mmt_telemetry::prometheus::render(&a);
        assert_eq!(text, mmt_telemetry::prometheus::render(&b));
        assert!(text.contains("mmt_mode_transitions_total{kind=\"degrade\",segment=\"wan\"} 1"));
        assert!(text.contains("mmt_controller_samples_total{segment=\"wan\"} 2"));
    }
}
