//! # `mmt-core` — the multi-modal transport protocol
//!
//! This crate is the paper's contribution (§5): a transport protocol for
//! DAQ elephant flows whose feature set is reconfigured *by the network*
//! as the flow crosses segments — "a pragmatic layering violation". The
//! wire format lives in `mmt-wire`; the in-network header surgery lives in
//! `mmt-dataplane`; this crate provides the protocol's *behaviour*:
//!
//! * [`machine`] — the sans-io state-machine contract every node obeys:
//!   `poll(now, input, &mut outputs)`, no clocks/sockets/threads inside,
//!   timers as "wake me at T" outputs. The simulator and the `mmt-io`
//!   real-socket runtime are two drivers of these identical machines.
//! * [`mode`] — named modes (feature set + parameters) and the canonical
//!   pilot-study mode sequence (mode 0/1 unreliable in the DAQ network,
//!   mode 2 age-sensitive + recoverable-loss on the WAN, mode 3 timeliness
//!   check at the destination, §5.4).
//! * [`sender`] — the source endpoint: emits discrete MMT datagrams
//!   (Req 7) with no retransmission buffering at the sensor (§4's point
//!   that sources do not buffer), honours backpressure credits (§5.1).
//! * [`buffer`] — the in-network retransmission buffer (the DTN 1 role):
//!   stores the upgraded stream and answers NAKs, so recovery happens
//!   from "a 'recent' (lower RTT) retransmission buffer ... to avoid
//!   retransmission from the source" (§1).
//! * [`receiver`] — the consuming endpoint (the DTN 2 role): detects loss
//!   from sequence gaps, NAKs the retransmission source named *in the
//!   packet header*, delivers datagrams immediately (no head-of-line
//!   blocking), and accounts ages/deadlines.
//! * [`seqtrack`] — sequence-space bookkeeping (gap detection, dedup).
//! * [`controller`] — the closed-loop adaptation state machine: consumes
//!   per-segment health observations and emits hysteresis-damped mode
//!   transitions (degrade/recover/re-home/shed).
//! * [`flowtable`] — dense struct-of-arrays per-flow state (generation
//!   checked `u32` ids, parallel columns for seq cursors, mode words,
//!   deadlines, occupancy) so a million flows cost tens of bytes each
//!   instead of a boxed object graph.
//! * [`resourcemap`] — the §6 future-work sketch: a shared map of
//!   in-network programmable resources and a mode planner that assigns
//!   per-segment modes from it, plus a gossip-style map exchange.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod controller;
pub mod flowtable;
pub mod machine;
pub mod mode;
pub mod receiver;
pub mod resourcemap;
pub mod sender;
pub mod seqtrack;
pub mod standby;
pub mod transit;

pub use buffer::{RetransmitBuffer, RetransmitBufferStats};
pub use controller::{
    ControllerConfig, ControllerStats, HealthSample, ModeController, ModeTransition,
};
pub use flowtable::{FlowId, FlowTable, FlowTableStats, ModeWord, NO_RETX_SLOT};
pub use machine::{Input, Machine, Output};
pub use mode::{Mode, ModeParams};
pub use receiver::{MmtReceiver, ReceivedMessage, ReceiverConfig, ReceiverStats};
pub use resourcemap::{Capability, ModePlanner, ResourceMap};
pub use sender::{Framing, MmtSender, SenderConfig, SenderStats};
pub use seqtrack::SeqTracker;
pub use standby::{StandbyBuffer, StandbyBufferStats};
pub use transit::{TransitBuffer, TransitBufferStats};
