//! The MMT consuming endpoint — the DTN 2 role of the pilot.
//!
//! "DTN 2 then uses this information to detect loss, and to prepare a NAK
//! to restore the missing packets" (§5.4). Datagrams are delivered to the
//! application the moment they arrive — MMT is message-based (Req 7), so a
//! gap never blocks later messages (the head-of-line contrast with TCP in
//! §4.1).

use crate::machine::{self, Input, Machine, Output};
use crate::seqtrack::SeqTracker;
use mmt_dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
use mmt_netsim::{Context, Node, Packet, PortId, Time, TimerToken};
use mmt_wire::mmt::{ControlRepr, ExperimentId, MmtRepr, NakRange, NakRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};
use std::collections::BTreeMap;

const TOKEN_NAK: TimerToken = 0x17;

/// Receiver configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverConfig {
    /// The experiment this endpoint consumes.
    pub experiment: ExperimentId,
    /// This endpoint's address (stamped in NAKs as the requester).
    pub own_addr: Ipv4Address,
    /// Delay between detecting a gap and sending the first NAK (allows
    /// benign reordering to settle).
    pub reorder_delay: Time,
    /// Interval between NAK retries for unrecovered gaps.
    pub nak_interval: Time,
    /// Ceiling for the backed-off NAK retry interval. Each retry round
    /// that makes no recovery progress doubles the interval (exponential
    /// backoff, so NAK storms decay instead of hammering a lossy reverse
    /// path); any recovery resets it to `nak_interval`.
    pub nak_interval_max: Time,
    /// Per-sequence NAK retry budget. A sequence NAKed this many times
    /// without recovery is abandoned as lost even before the time-based
    /// give-up fires. Keep high (default 64) so `give_up_after` governs
    /// in ordinary runs.
    pub max_nak_retries: u32,
    /// Give up on a gap after this long and count it lost.
    pub give_up_after: Time,
    /// Maximum ranges per NAK message.
    pub max_ranges_per_nak: usize,
    /// Expected message count (None = open-ended stream).
    pub expect_messages: Option<u64>,
}

impl ReceiverConfig {
    /// Defaults suited to a 10–100 ms WAN.
    pub fn wan_defaults(experiment: ExperimentId, own_addr: Ipv4Address) -> ReceiverConfig {
        ReceiverConfig {
            experiment,
            own_addr,
            reorder_delay: Time::from_micros(200),
            nak_interval: Time::from_millis(30),
            nak_interval_max: Time::from_millis(240),
            max_nak_retries: 64,
            give_up_after: Time::from_secs(2),
            max_ranges_per_nak: 32,
            expect_messages: None,
        }
    }
}

/// One delivered message's record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceivedMessage {
    /// Application message index (from the payload prefix).
    pub msg_index: u64,
    /// Network sequence number, if the stream was sequenced.
    pub seq: Option<u64>,
    /// Source creation time.
    pub created_at: Time,
    /// Arrival (= delivery) time — MMT delivers immediately.
    pub arrived_at: Time,
    /// In-network age carried by the header, if tracked.
    pub age_ns: Option<u64>,
    /// Whether the aged flag was set.
    pub aged: bool,
    /// Whether this was an in-network duplicate copy.
    pub duplicated: bool,
    /// Whether this message arrived via NAK recovery.
    pub recovered: bool,
}

/// Counters exposed after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Messages delivered (deduplicated).
    pub delivered: u64,
    /// Duplicate packets suppressed.
    pub duplicates: u64,
    /// NAK messages sent.
    pub naks_sent: u64,
    /// Sequences recovered via NAK.
    pub recovered: u64,
    /// Sequences abandoned as lost.
    pub lost: u64,
    /// Deadline-exceeded notifications received (when this node is the
    /// notify target).
    pub deadline_notifications: u64,
    /// Sequences abandoned because their per-sequence NAK retry budget
    /// ran out (subset of `lost`).
    pub nak_retries_exhausted: u64,
    /// Duplicate copies of sequences that had already been recovered via
    /// NAK (late original vs. retransmission races; subset of
    /// `duplicates`).
    pub dup_after_recovery: u64,
    /// Packets delivered with the aged flag set.
    pub aged_deliveries: u64,
    /// When the expected message count was reached.
    pub completed_at: Option<Time>,
}

/// The consuming endpoint node (port 0 faces the network).
pub struct MmtReceiver {
    config: ReceiverConfig,
    tracker: SeqTracker,
    /// First-detected time per gap start (for give-up accounting).
    gap_first_seen: BTreeMap<u64, Time>,
    /// Seqs we have NAKed at least once (to label recoveries).
    naked: std::collections::BTreeSet<u64>,
    /// Seqs that arrived via NAK recovery (to label late duplicates).
    recovered_seqs: std::collections::BTreeSet<u64>,
    /// NAK retry count per outstanding sequence.
    nak_counts: BTreeMap<u64, u32>,
    /// Consecutive NAK rounds without any recovery progress (drives the
    /// exponential retry backoff).
    barren_rounds: u32,
    /// Retransmit source seen on the most recent sequenced packet.
    retransmit_source: Option<(Ipv4Address, u16)>,
    /// When the most recent sequenced packet arrived.
    last_arrival: Time,
    nak_timer_armed: bool,
    outbox: Vec<Output>,
    /// Delivered messages, in arrival order.
    log: Vec<ReceivedMessage>,
    /// Distinct message indices delivered.
    distinct: std::collections::BTreeSet<u64>,
    /// Counters.
    pub stats: ReceiverStats,
}

impl MmtReceiver {
    /// Create a receiver.
    pub fn new(config: ReceiverConfig) -> MmtReceiver {
        MmtReceiver {
            config,
            tracker: SeqTracker::new(),
            gap_first_seen: BTreeMap::new(),
            naked: std::collections::BTreeSet::new(),
            recovered_seqs: std::collections::BTreeSet::new(),
            nak_counts: BTreeMap::new(),
            barren_rounds: 0,
            retransmit_source: None,
            last_arrival: Time::ZERO,
            nak_timer_armed: false,
            outbox: Vec::new(),
            log: Vec::new(),
            distinct: std::collections::BTreeSet::new(),
            stats: ReceiverStats::default(),
        }
    }

    /// The delivery log, in arrival order.
    pub fn log(&self) -> &[ReceivedMessage] {
        &self.log
    }

    /// Whether all expected messages have been delivered.
    pub fn is_complete(&self) -> bool {
        self.stats.completed_at.is_some()
    }

    /// Order-sensitive digest of the delivery log: FNV-1a over the
    /// `(msg_index, seq)` pairs in arrival order. Deliberately excludes
    /// timestamps, so the virtual-time and real-time drivers of the same
    /// machines can compare end-to-end delivery byte-for-byte.
    pub fn delivery_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for m in &self.log {
            for v in [m.msg_index, m.seq.map_or(u64::MAX, |s| s)] {
                for b in v.to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        h
    }

    /// Mutable access to the live configuration. The real-time io driver
    /// uses this to feed its measured RTO estimate into `nak_interval`
    /// (and to tighten retry budgets when a deadline watchdog degrades
    /// the flow); the simulator never calls it, so virtual-time runs are
    /// unaffected. Takes effect when the next NAK timer is armed.
    pub fn config_mut(&mut self) -> &mut ReceiverConfig {
        &mut self.config
    }

    /// The retransmit source named by the most recent sequenced packet —
    /// where the next NAK will go. After a re-homing mode change this
    /// flips to the standby buffer as soon as one re-stamped packet
    /// arrives.
    pub fn retransmit_source(&self) -> Option<(Ipv4Address, u16)> {
        self.retransmit_source
    }

    /// Export the receiver's counters — and the end-to-end latency and
    /// in-network age distributions over everything delivered so far —
    /// into a metric registry, labeled by `node`.
    pub fn export_metrics(&self, node: &str, reg: &mut mmt_telemetry::MetricRegistry) {
        let labels = [("node", node)];
        for (name, help, value) in [
            (
                "mmt_receiver_delivered_total",
                "Messages delivered (deduplicated).",
                self.stats.delivered,
            ),
            (
                "mmt_receiver_duplicates_total",
                "Duplicate packets suppressed.",
                self.stats.duplicates,
            ),
            (
                "mmt_receiver_naks_sent_total",
                "NAK messages sent.",
                self.stats.naks_sent,
            ),
            (
                "mmt_receiver_recovered_total",
                "Sequences recovered via NAK.",
                self.stats.recovered,
            ),
            (
                "mmt_receiver_lost_total",
                "Sequences abandoned as lost.",
                self.stats.lost,
            ),
            (
                "mmt_receiver_deadline_notifications_total",
                "Deadline-exceeded notifications received.",
                self.stats.deadline_notifications,
            ),
            (
                "mmt_receiver_aged_deliveries_total",
                "Packets delivered with the aged flag set.",
                self.stats.aged_deliveries,
            ),
            (
                "mmt_receiver_nak_retries_exhausted_total",
                "Sequences abandoned after exhausting the NAK retry budget.",
                self.stats.nak_retries_exhausted,
            ),
            (
                "mmt_receiver_dup_after_recovery_total",
                "Duplicate copies of already-recovered sequences suppressed.",
                self.stats.dup_after_recovery,
            ),
        ] {
            reg.describe(name, help);
            reg.counter_add(name, &labels, value);
        }
        let mut e2e = mmt_telemetry::NsHistogram::new();
        let mut age = mmt_telemetry::NsHistogram::new();
        for m in &self.log {
            e2e.record(m.arrived_at.saturating_sub(m.created_at).as_nanos());
            if let Some(a) = m.age_ns {
                age.record(a);
            }
        }
        reg.describe(
            "mmt_receiver_e2e_latency_ns",
            "Source-creation to delivery latency per message, nanoseconds.",
        );
        reg.observe_histogram("mmt_receiver_e2e_latency_ns", &labels, &e2e);
        reg.describe(
            "mmt_receiver_age_ns",
            "In-network age carried by delivered headers, nanoseconds.",
        );
        reg.observe_histogram("mmt_receiver_age_ns", &labels, &age);
    }

    fn arm_nak_timer(&mut self, now: Time, delay: Time, out: &mut Vec<Output>) {
        if !self.nak_timer_armed {
            self.nak_timer_armed = true;
            out.push(Output::WakeAt {
                at: now + delay,
                token: TOKEN_NAK,
            });
        }
    }

    /// Missing ranges: gaps below the highest received sequence, plus —
    /// when the expected message count is known — the invisible *tail*
    /// (sequences after the highest received). Border elements assign
    /// consecutive sequence numbers from 0, so the expected count bounds
    /// the sequence space exactly.
    /// The tail is only suspicious once the stream has gone quiet — during
    /// active streaming the "missing" tail is simply data not yet sent.
    fn outstanding_ranges(&self, cap: usize, now: Time) -> Vec<mmt_wire::mmt::NakRange> {
        let mut missing = self.tracker.missing_ranges(cap);
        let quiet = now.saturating_sub(self.last_arrival) >= self.config.nak_interval;
        if let Some(expect) = self.config.expect_messages {
            // Tail guard requires a sequenced stream (something arrived)
            // and silence long enough to rule out in-flight data.
            if quiet && self.tracker.received_count() > 0 && missing.len() < cap {
                let next = self.tracker.highest().map_or(0, |h| h + 1);
                if next < expect {
                    missing.push(mmt_wire::mmt::NakRange {
                        first: next,
                        last: expect - 1,
                    });
                }
            }
        }
        missing
    }

    /// Retry interval after `barren_rounds` unproductive NAK rounds:
    /// exponential backoff from `nak_interval`, capped at
    /// `nak_interval_max`.
    fn backoff_interval(&self) -> Time {
        let shift = self.barren_rounds.saturating_sub(1).min(16);
        let scaled = self.config.nak_interval * (1u64 << shift);
        scaled
            .min(self.config.nak_interval_max)
            .max(self.config.nak_interval)
    }

    /// Send a NAK for outstanding gaps, charging each sequence's retry
    /// budget; sequences whose budget is exhausted are abandoned as lost
    /// instead. Returns whether a NAK went out.
    fn send_nak(&mut self, now: Time, out: &mut Vec<Output>) -> bool {
        let missing = self.outstanding_ranges(self.config.max_ranges_per_nak, now);
        if missing.is_empty() {
            return false;
        }
        let Some((_, port)) = self.retransmit_source else {
            return false;
        };
        // Charge the per-sequence retry budget, rebuilding merged ranges
        // from the sequences still worth asking for.
        let mut ranges: Vec<NakRange> = Vec::new();
        for r in &missing {
            for s in r.first..=r.last {
                let count = self.nak_counts.entry(s).or_insert(0);
                if *count >= self.config.max_nak_retries {
                    if self.tracker.record(s) {
                        // Pseudo-fill so this sequence stops being a gap.
                        self.stats.lost += 1;
                        self.stats.nak_retries_exhausted += 1;
                    }
                    self.nak_counts.remove(&s);
                    continue;
                }
                *count += 1;
                self.naked.insert(s);
                match ranges.last_mut() {
                    Some(r) if r.last + 1 == s => r.last = s,
                    _ => ranges.push(NakRange { first: s, last: s }),
                }
            }
        }
        if ranges.is_empty() {
            return false;
        }
        let nak = NakRepr {
            requester: self.config.own_addr,
            requester_port: port,
            ranges,
        };
        let ctrl = ControlRepr::Nak(nak).emit_packet(self.config.experiment);
        // mmt-lint: allow(P1, "parsing bytes emitted one line above; emit/parse are inverses")
        let repr = MmtRepr::parse(&ctrl).expect("just built");
        let frame = build_eth_mmt_frame(
            EthernetAddress([0x02, 0, 0, 0, 0, 0x20]),
            EthernetAddress::BROADCAST,
            &repr,
            &ctrl[repr.header_len()..],
        );
        let mut pkt = Packet::new(frame);
        pkt.meta.control = true;
        out.push(Output::Transmit { port: 0, pkt });
        self.stats.naks_sent += 1;
        true
    }

    /// Abandon gaps older than the give-up horizon; returns whether any
    /// gaps remain outstanding.
    fn age_out_gaps(&mut self, now: Time) -> bool {
        let missing = self.outstanding_ranges(usize::MAX, now);
        let mut outstanding = false;
        for r in missing {
            let first_seen = *self.gap_first_seen.entry(r.first).or_insert(now);
            if now.saturating_sub(first_seen) >= self.config.give_up_after {
                for s in r.first..=r.last {
                    self.tracker.record(s); // pseudo-fill: stop NAKing
                    self.stats.lost += 1;
                    self.nak_counts.remove(&s);
                }
                self.gap_first_seen.remove(&r.first);
            } else {
                outstanding = true;
            }
        }
        outstanding
    }

    fn deliver(&mut self, msg: ReceivedMessage, now: Time) {
        if msg.aged {
            self.stats.aged_deliveries += 1;
        }
        self.distinct.insert(msg.msg_index);
        self.log.push(msg);
        self.stats.delivered += 1;
        if let Some(expect) = self.config.expect_messages {
            if self.distinct.len() as u64 >= expect && self.stats.completed_at.is_none() {
                self.stats.completed_at = Some(now);
            }
        }
    }
}

impl MmtReceiver {
    fn on_frame(&mut self, now: Time, pkt: Packet, out: &mut Vec<Output>) {
        let meta = pkt.meta;
        let parsed = ParsedPacket::parse(pkt.bytes, 0);
        let Some(off) = parsed.layers.mmt_offset() else {
            return;
        };
        // Control messages: count deadline notifications.
        if let Ok((_, ctrl)) = ControlRepr::parse_packet(&parsed.bytes[off..]) {
            if matches!(ctrl, ControlRepr::DeadlineExceeded(_)) {
                self.stats.deadline_notifications += 1;
            }
            return;
        }
        let Some(repr) = parsed.mmt_repr() else {
            return;
        };
        if repr.experiment.experiment() != self.config.experiment.experiment() {
            return;
        }
        // Sequence bookkeeping.
        let seq = repr.sequence();
        let mut recovered = false;
        if let Some(s) = seq {
            self.last_arrival = now;
            if let Some(r) = repr.retransmit() {
                self.retransmit_source = Some((r.source, r.port));
            }
            if !self.tracker.record(s) {
                self.stats.duplicates += 1;
                if self.recovered_seqs.contains(&s) {
                    self.stats.dup_after_recovery += 1;
                }
                return;
            }
            if self.naked.remove(&s) {
                recovered = true;
                self.stats.recovered += 1;
                self.recovered_seqs.insert(s);
                self.nak_counts.remove(&s);
                // Progress: reset the retry backoff.
                self.barren_rounds = 0;
            }
            // Gap filled? Clean up its first-seen entry lazily (handled in
            // age_out_gaps). New gaps — or a known stream length with
            // messages still outstanding (tail-loss guard) — arm the
            // reorder-delay NAK timer.
            let tail_pending = self
                .config
                .expect_messages
                .is_some_and(|expect| self.tracker.received_count() < expect);
            if self.tracker.gap_count() > 0 || tail_pending {
                self.arm_nak_timer(now, self.config.reorder_delay, out);
            }
        }
        // Extract the application message index from the payload prefix.
        let payload = &parsed.bytes[off + repr.header_len()..];
        if payload.len() < 8 {
            return;
        }
        let Ok(prefix) = payload[..8].try_into() else {
            return; // unreachable: length checked above
        };
        let msg_index = u64::from_be_bytes(prefix);
        let msg = ReceivedMessage {
            msg_index,
            seq,
            created_at: meta.created_at,
            arrived_at: now,
            age_ns: repr.age().map(|a| a.age_ns),
            aged: repr.age().is_some_and(|a| a.aged),
            duplicated: repr.features.contains(mmt_wire::mmt::Features::DUPLICATED),
            recovered,
        };
        self.deliver(msg, now);
    }

    fn on_nak_timer(&mut self, now: Time, out: &mut Vec<Output>) {
        self.nak_timer_armed = false;
        let outstanding = self.age_out_gaps(now);
        if outstanding && self.send_nak(now, out) {
            self.barren_rounds = self.barren_rounds.saturating_add(1);
        }
        // Stay armed while anything is (or may become) outstanding: gaps
        // under recovery, or a pending tail waiting out the quiet period.
        let tail_pending = self.config.expect_messages.is_some_and(|expect| {
            self.tracker.received_count() > 0 && self.tracker.received_count() < expect
        });
        if outstanding || tail_pending {
            self.arm_nak_timer(now, self.backoff_interval(), out);
        }
    }
}

impl Machine for MmtReceiver {
    fn poll(&mut self, now: Time, input: Input, out: &mut Vec<Output>) {
        match input {
            Input::Frame { pkt, .. } => self.on_frame(now, pkt, out),
            Input::Timer { token } if token == TOKEN_NAK => self.on_nak_timer(now, out),
            Input::Start | Input::Timer { .. } | Input::Restart => {}
        }
    }

    fn outbox(&mut self) -> &mut Vec<Output> {
        &mut self.outbox
    }
}

impl Node for MmtReceiver {
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
        machine::step(self, ctx, Input::Frame { port, pkt });
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        machine::step(self, ctx, Input::Timer { token });
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_netsim::{Bandwidth, LinkSpec, NodeId, Simulator};

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn exp() -> ExperimentId {
        ExperimentId::new(2, 0)
    }

    /// Build an upgraded (mode 2) data frame as DTN 1 would emit it.
    fn wan_frame(msg_index: u64, seq: u64, aged: bool) -> Packet {
        let repr = MmtRepr::data(exp())
            .with_sequence(seq)
            .with_retransmit(Ipv4Address::new(10, 0, 0, 5), 47_000)
            .with_age(1_000, aged)
            .with_flags(mmt_wire::mmt::Features::ACK_NAK);
        let mut payload = vec![0u8; 64];
        payload[..8].copy_from_slice(&msg_index.to_be_bytes());
        Packet::new(build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 5]),
            EthernetAddress([2, 0, 0, 0, 0, 8]),
            &repr,
            &payload,
        ))
    }

    fn setup() -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        let rcv = sim.add_node(
            "dtn2",
            Box::new(MmtReceiver::new(ReceiverConfig::wan_defaults(
                exp(),
                Ipv4Address::new(10, 0, 0, 8),
            ))),
        );
        let net = sim.add_node("net", Box::new(Sink));
        sim.add_oneway(
            rcv,
            0,
            net,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
        );
        (sim, rcv, net)
    }

    #[test]
    fn in_order_stream_delivers_without_naks() {
        let (mut sim, rcv, net) = setup();
        for i in 0..20u64 {
            sim.inject(Time::from_micros(i), rcv, 0, wan_frame(i, i, false));
        }
        sim.run();
        let r = sim.node_as::<MmtReceiver>(rcv).unwrap();
        assert_eq!(r.stats.delivered, 20);
        assert_eq!(r.stats.naks_sent, 0);
        assert_eq!(r.stats.duplicates, 0);
        assert!(sim.local_deliveries(net).is_empty(), "no NAK traffic");
    }

    #[test]
    fn gap_triggers_nak_after_reorder_delay() {
        let (mut sim, rcv, net) = setup();
        // Seqs 0,1,2 then 5 — gap {3,4}.
        for (t, s) in [(0u64, 0u64), (1, 1), (2, 2), (3, 5)] {
            sim.inject(Time::from_micros(t), rcv, 0, wan_frame(s, s, false));
        }
        sim.run_until(Time::from_millis(1));
        let naks = sim.local_deliveries(net);
        assert_eq!(naks.len(), 1, "one NAK after the reorder delay");
        let parsed = ParsedPacket::parse(naks[0].1.bytes.clone(), 0);
        let off = parsed.layers.mmt_offset().unwrap();
        let (_, ctrl) = ControlRepr::parse_packet(&parsed.bytes[off..]).unwrap();
        match ctrl {
            ControlRepr::Nak(nak) => {
                assert_eq!(nak.ranges.len(), 1);
                assert_eq!(nak.ranges[0].first, 3);
                assert_eq!(nak.ranges[0].last, 4);
                assert_eq!(nak.requester, Ipv4Address::new(10, 0, 0, 8));
            }
            other => panic!("expected NAK, got {other:?}"),
        }
        // Deliveries were NOT blocked by the gap (no HOL).
        let r = sim.node_as::<MmtReceiver>(rcv).unwrap();
        assert_eq!(r.stats.delivered, 4);
    }

    #[test]
    fn recovery_fills_gap_and_stops_naking() {
        let (mut sim, rcv, net) = setup();
        for (t, s) in [(0u64, 0u64), (1, 1), (2, 4)] {
            sim.inject(Time::from_micros(t), rcv, 0, wan_frame(s, s, false));
        }
        // Deliver the retransmissions shortly after the first NAK.
        sim.inject(Time::from_millis(2), rcv, 0, wan_frame(2, 2, false));
        sim.inject(Time::from_millis(2), rcv, 0, wan_frame(3, 3, false));
        sim.run_until(Time::from_secs(1));
        let r = sim.node_as::<MmtReceiver>(rcv).unwrap();
        assert_eq!(r.stats.delivered, 5);
        assert_eq!(r.stats.recovered, 2);
        assert_eq!(r.stats.lost, 0);
        assert!(r.log().iter().filter(|m| m.recovered).count() == 2);
        // Only the initial NAK (the gap was filled before the retry).
        assert_eq!(sim.local_deliveries(net).len(), 1);
    }

    #[test]
    fn persistent_gap_retries_then_gives_up() {
        let mut sim = Simulator::new(1);
        let mut cfg = ReceiverConfig::wan_defaults(exp(), Ipv4Address::new(10, 0, 0, 8));
        cfg.give_up_after = Time::from_millis(100);
        cfg.nak_interval = Time::from_millis(10);
        let rcv = sim.add_node("dtn2", Box::new(MmtReceiver::new(cfg)));
        let net = sim.add_node("net", Box::new(Sink));
        sim.add_oneway(
            rcv,
            0,
            net,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
        );
        sim.inject(Time::ZERO, rcv, 0, wan_frame(0, 0, false));
        sim.inject(Time::from_micros(1), rcv, 0, wan_frame(3, 3, false));
        sim.run_until(Time::from_secs(1));
        let r = sim.node_as::<MmtReceiver>(rcv).unwrap();
        assert_eq!(r.stats.lost, 2, "seqs 1–2 abandoned");
        let naks = sim.local_deliveries(net).len();
        assert!((2..=12).contains(&naks), "retried then stopped: {naks}");
        // After giving up, no more NAK traffic.
        let quiet_after = sim.local_deliveries(net).len();
        sim.run_until(Time::from_secs(2));
        assert_eq!(sim.local_deliveries(net).len(), quiet_after);
    }

    fn persistent_gap_run(
        nak_interval_max: Time,
        max_nak_retries: u32,
        give_up_after: Time,
    ) -> (ReceiverStats, usize) {
        let mut sim = Simulator::new(1);
        let mut cfg = ReceiverConfig::wan_defaults(exp(), Ipv4Address::new(10, 0, 0, 8));
        cfg.nak_interval = Time::from_millis(10);
        cfg.nak_interval_max = nak_interval_max;
        cfg.max_nak_retries = max_nak_retries;
        cfg.give_up_after = give_up_after;
        let rcv = sim.add_node("dtn2", Box::new(MmtReceiver::new(cfg)));
        let net = sim.add_node("net", Box::new(Sink));
        sim.add_oneway(
            rcv,
            0,
            net,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
        );
        sim.inject(Time::ZERO, rcv, 0, wan_frame(0, 0, false));
        sim.inject(Time::from_micros(1), rcv, 0, wan_frame(3, 3, false));
        sim.run_until(Time::from_secs(10));
        let stats = sim.node_as::<MmtReceiver>(rcv).unwrap().stats;
        (stats, sim.local_deliveries(net).len())
    }

    #[test]
    fn nak_retry_budget_bounds_naks() {
        // Time-based give-up is far away; the per-sequence budget (3)
        // must cut the storm off on its own.
        let (stats, naks) = persistent_gap_run(Time::from_millis(10), 3, Time::from_secs(60));
        assert_eq!(naks, 3, "exactly the budgeted retries");
        assert_eq!(stats.lost, 2, "seqs 1-2 abandoned");
        assert_eq!(stats.nak_retries_exhausted, 2);
    }

    #[test]
    fn backoff_slows_nak_retries() {
        // Flat retries (cap == interval) vs. exponential backoff capped
        // at 16x: same give-up horizon, far fewer NAKs with backoff.
        let (flat_stats, flat_naks) =
            persistent_gap_run(Time::from_millis(10), u32::MAX, Time::from_millis(500));
        let (bo_stats, bo_naks) =
            persistent_gap_run(Time::from_millis(160), u32::MAX, Time::from_millis(500));
        assert_eq!(flat_stats.lost, 2);
        assert_eq!(bo_stats.lost, 2);
        assert!(
            bo_naks * 2 < flat_naks,
            "backoff {bo_naks} should be well under flat {flat_naks}"
        );
        assert_eq!(
            bo_stats.nak_retries_exhausted, 0,
            "time-based give-up governed"
        );
    }

    #[test]
    fn late_duplicate_of_recovered_seq_counted() {
        let (mut sim, rcv, _) = setup();
        for (t, s) in [(0u64, 0u64), (1, 1), (2, 4)] {
            sim.inject(Time::from_micros(t), rcv, 0, wan_frame(s, s, false));
        }
        // Retransmissions fill the gap...
        sim.inject(Time::from_millis(2), rcv, 0, wan_frame(2, 2, false));
        sim.inject(Time::from_millis(2), rcv, 0, wan_frame(3, 3, false));
        // ...then the delayed originals finally show up.
        sim.inject(Time::from_millis(5), rcv, 0, wan_frame(2, 2, false));
        sim.inject(Time::from_millis(5), rcv, 0, wan_frame(3, 3, false));
        sim.run_until(Time::from_secs(1));
        let r = sim.node_as::<MmtReceiver>(rcv).unwrap();
        assert_eq!(r.stats.recovered, 2);
        assert_eq!(r.stats.duplicates, 2);
        assert_eq!(r.stats.dup_after_recovery, 2);
        assert_eq!(r.stats.delivered, 5);
    }

    #[test]
    fn naks_are_stamped_control_plane() {
        let (mut sim, rcv, net) = setup();
        for (t, s) in [(0u64, 0u64), (1, 3)] {
            sim.inject(Time::from_micros(t), rcv, 0, wan_frame(s, s, false));
        }
        sim.run_until(Time::from_millis(1));
        let naks = sim.local_deliveries(net);
        assert!(!naks.is_empty());
        for (_, pkt) in naks {
            assert!(pkt.meta.control, "NAKs must carry the control flag");
        }
    }

    #[test]
    fn duplicates_suppressed_and_counted() {
        let (mut sim, rcv, _) = setup();
        sim.inject(Time::ZERO, rcv, 0, wan_frame(0, 0, false));
        sim.inject(Time::from_micros(1), rcv, 0, wan_frame(0, 0, false));
        sim.run();
        let r = sim.node_as::<MmtReceiver>(rcv).unwrap();
        assert_eq!(r.stats.delivered, 1);
        assert_eq!(r.stats.duplicates, 1);
    }

    #[test]
    fn aged_flag_and_completion_accounted() {
        let mut sim = Simulator::new(1);
        let mut cfg = ReceiverConfig::wan_defaults(exp(), Ipv4Address::new(10, 0, 0, 8));
        cfg.expect_messages = Some(3);
        let rcv = sim.add_node("dtn2", Box::new(MmtReceiver::new(cfg)));
        for i in 0..3u64 {
            sim.inject(Time::from_micros(i), rcv, 0, wan_frame(i, i, i == 1));
        }
        sim.run();
        let r = sim.node_as::<MmtReceiver>(rcv).unwrap();
        assert!(r.is_complete());
        assert_eq!(r.stats.aged_deliveries, 1);
        assert_eq!(r.stats.completed_at, Some(Time::from_micros(2)));
        assert!(r.log()[1].aged);
        assert_eq!(r.log()[0].age_ns, Some(1_000));
    }

    #[test]
    fn unsequenced_mode0_traffic_delivers_without_tracking() {
        let (mut sim, rcv, net) = setup();
        let mut payload = vec![0u8; 64];
        payload[..8].copy_from_slice(&7u64.to_be_bytes());
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 8]),
            &MmtRepr::data(exp()),
            &payload,
        );
        sim.inject(Time::ZERO, rcv, 0, Packet::new(frame));
        sim.run();
        let r = sim.node_as::<MmtReceiver>(rcv).unwrap();
        assert_eq!(r.stats.delivered, 1);
        assert_eq!(r.log()[0].seq, None);
        assert_eq!(r.log()[0].msg_index, 7);
        assert!(sim.local_deliveries(net).is_empty());
    }

    #[test]
    fn foreign_experiment_ignored() {
        let (mut sim, rcv, _) = setup();
        let repr = MmtRepr::data(ExperimentId::new(9, 0)).with_sequence(0);
        let mut payload = vec![0u8; 16];
        payload[..8].copy_from_slice(&0u64.to_be_bytes());
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 8]),
            &repr,
            &payload,
        );
        sim.inject(Time::ZERO, rcv, 0, Packet::new(frame));
        sim.run();
        assert_eq!(sim.node_as::<MmtReceiver>(rcv).unwrap().stats.delivered, 0);
    }
}
