//! Dense per-flow protocol state, stored struct-of-arrays.
//!
//! A fleet of a million detector streams cannot afford a boxed
//! `Sensor`/`SeqTracker`/`ModeController` per flow: the boxes scatter
//! across the heap, every per-packet touch is a pointer chase, and the
//! resident cost is dominated by allocator and vtable overhead rather
//! than the ~40 bytes of state a flow actually needs. [`FlowTable`]
//! flattens that state into parallel columns keyed by a dense `u32`
//! index:
//!
//! ```text
//!              index →   0        1        2        3      ...
//! generation column  [ g0     | g1     | g2     | g3     | ... ]
//! seq cursor column  [ u64    | u64    | u64    | u64    | ... ]
//! remaining column   [ u32    | u32    | u32    | u32    | ... ]
//! retx slot column   [ u32    | u32    | u32    | u32    | ... ]
//! mode word column   [ u64    | u64    | u64    | u64    | ... ]
//! deadline column    [ u64 ns | u64 ns | u64 ns | u64 ns | ... ]
//! occupancy column   [ u32    | u32    | u32    | u32    | ... ]
//! ```
//!
//! Columns, not rows: the hot loops touch one field across many flows
//! (stamp the next sequence, decrement a remaining counter), so packing
//! each field contiguously turns a cache line into eight flows instead
//! of one. A row layout (`Vec<FlowState>`) would drag every cold field
//! through the cache on every touch.
//!
//! ## Generation tokens
//!
//! [`FlowId`] is `(index, generation)` — the same discipline as
//! `PacketArena`'s `PacketRef`. Releasing a flow bumps the slot's
//! generation, so a stale id held past release is *inert*: every
//! accessor returns `None`/`false` and never aliases the slot's next
//! tenant. Double release cannot corrupt the free list.
//!
//! ## Borrow discipline
//!
//! The table is plain data with no interior mutability; owners share it
//! behind whatever cell fits their layer (the many-flow fleet uses
//! `Rc<RefCell<FlowTable>>` per group, the pilot owns one directly).
//! Logic types — the sequence cursor users, the [`ModeWord`]-driven
//! controller — borrow a slot for the duration of one callback and
//! write results back; nothing holds a column reference across events.

/// Handle to a flow's row across every column. `Copy`, 8 bytes, safe
/// against use-after-release (see the module docs on generations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    index: u32,
    generation: u32,
}

impl FlowId {
    /// The dense column index (stable for the life of the allocation).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The generation the id was issued under.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// "No retransmit-buffer slot" sentinel for the `retx_slot` column.
pub const NO_RETX_SLOT: u32 = u32::MAX;

/// Per-flow mode/EWMA state packed into one 64-bit word — the storage
/// half of [`crate::ModeController`], sized to live in a [`FlowTable`]
/// column.
///
/// Layout (low to high):
/// * bits 0..24 — smoothed loss rate, ppm (saturating; ≥ 16.7M ppm all
///   read as the cap, far beyond the 1M ppm a loss *ratio* can reach)
/// * bits 24..40 — consecutive clean intervals (saturating u16)
/// * bits 40..56 — consecutive dead intervals (saturating u16)
/// * bit 56 — degraded (duplicated forwarding engaged)
/// * bit 57 — re-homed to the standby (sticky)
/// * bit 58 — shedding (backpressure engaged)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ModeWord(u64);

const EWMA_BITS: u32 = 24;
const EWMA_MAX: u64 = (1 << EWMA_BITS) - 1;
const CLEAN_SHIFT: u32 = 24;
const DEAD_SHIFT: u32 = 40;
const COUNT_MAX: u64 = u16::MAX as u64;
const DEGRADED_BIT: u64 = 1 << 56;
const REHOMED_BIT: u64 = 1 << 57;
const SHEDDING_BIT: u64 = 1 << 58;

impl ModeWord {
    /// The clean (mode-2) state: zero EWMA, no flags, no streaks.
    pub fn new() -> ModeWord {
        ModeWord(0)
    }

    /// The raw packed bits (for column storage and digests).
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Rebuild from raw bits previously read with [`ModeWord::bits`].
    pub fn from_bits(bits: u64) -> ModeWord {
        ModeWord(bits)
    }

    /// Smoothed loss rate, parts per million.
    pub fn loss_ewma_ppm(&self) -> u64 {
        self.0 & EWMA_MAX
    }

    /// Store the loss EWMA, saturating at the 24-bit cap.
    pub fn set_loss_ewma_ppm(&mut self, ppm: u64) {
        self.0 = (self.0 & !EWMA_MAX) | ppm.min(EWMA_MAX);
    }

    /// Consecutive clean intervals seen while degraded.
    pub fn clean_intervals(&self) -> u32 {
        ((self.0 >> CLEAN_SHIFT) & COUNT_MAX) as u32
    }

    /// Store the clean-interval streak, saturating at `u16::MAX`.
    pub fn set_clean_intervals(&mut self, n: u32) {
        self.0 =
            (self.0 & !(COUNT_MAX << CLEAN_SHIFT)) | (u64::from(n).min(COUNT_MAX) << CLEAN_SHIFT);
    }

    /// Consecutive intervals the primary buffer has been dead.
    pub fn dead_intervals(&self) -> u32 {
        ((self.0 >> DEAD_SHIFT) & COUNT_MAX) as u32
    }

    /// Store the dead-interval streak, saturating at `u16::MAX`.
    pub fn set_dead_intervals(&mut self, n: u32) {
        self.0 =
            (self.0 & !(COUNT_MAX << DEAD_SHIFT)) | (u64::from(n).min(COUNT_MAX) << DEAD_SHIFT);
    }

    /// Whether the segment is in the degraded (duplicated) mode.
    pub fn degraded(&self) -> bool {
        self.0 & DEGRADED_BIT != 0
    }

    /// Set or clear the degraded flag.
    pub fn set_degraded(&mut self, on: bool) {
        if on {
            self.0 |= DEGRADED_BIT;
        } else {
            self.0 &= !DEGRADED_BIT;
        }
    }

    /// Whether the stream has been re-homed to the standby.
    pub fn rehomed(&self) -> bool {
        self.0 & REHOMED_BIT != 0
    }

    /// Set or clear the re-homed flag.
    pub fn set_rehomed(&mut self, on: bool) {
        if on {
            self.0 |= REHOMED_BIT;
        } else {
            self.0 &= !REHOMED_BIT;
        }
    }

    /// Whether backpressure shedding is engaged.
    pub fn shedding(&self) -> bool {
        self.0 & SHEDDING_BIT != 0
    }

    /// Set or clear the shedding flag.
    pub fn set_shedding(&mut self, on: bool) {
        if on {
            self.0 |= SHEDDING_BIT;
        } else {
            self.0 &= !SHEDDING_BIT;
        }
    }
}

/// Allocation counters exposed for benches and the property suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Allocations that grew the columns (fresh slot).
    pub fresh: u64,
    /// Allocations served from the free list (slot reused).
    pub reused: u64,
    /// Successful releases.
    pub released: u64,
    /// Releases rejected as stale (wrong generation, already released,
    /// or out of range). Stale *reads* are not counted: getters take
    /// `&self` and answer `None` without touching the stats.
    pub stale: u64,
    /// Allocations refused because the `u32` index space was exhausted.
    pub exhausted: u64,
    /// Most flows live at once.
    pub high_water: u64,
}

/// The struct-of-arrays flow-state table. See the module docs.
#[derive(Debug, Default)]
pub struct FlowTable {
    generation: Vec<u32>,
    live: Vec<bool>,
    seq: Vec<u64>,
    remaining: Vec<u32>,
    retx_slot: Vec<u32>,
    mode: Vec<u64>,
    deadline_ns: Vec<u64>,
    occupancy: Vec<u32>,
    free: Vec<u32>,
    live_count: usize,
    /// First index minted; columns store index − base. Nonzero only via
    /// [`FlowTable::with_base_index`], the id-space boundary test knob.
    base: u32,
    stats: FlowTableStats,
}

impl FlowTable {
    /// An empty table.
    // mmt-lint: cold
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// A table whose columns are pre-grown for `n` flows, so a fleet of
    /// known size never reallocates on the hot path.
    // mmt-lint: cold
    pub fn with_capacity(n: usize) -> FlowTable {
        let mut t = FlowTable::new();
        t.generation.reserve(n);
        t.live.reserve(n);
        t.seq.reserve(n);
        t.remaining.reserve(n);
        t.retx_slot.reserve(n);
        t.mode.reserve(n);
        t.deadline_ns.reserve(n);
        t.occupancy.reserve(n);
        t
    }

    /// A table whose first fresh index is `base` — the boundary-test
    /// knob: with `base` near `u32::MAX` the index space exhausts after
    /// a few allocations, which is otherwise unreachable in a test.
    // mmt-lint: cold
    #[must_use]
    pub fn with_base_index(mut self, base: u32) -> FlowTable {
        assert!(
            self.generation.is_empty(),
            "base index must be set before any allocation"
        );
        self.base = base;
        self
    }

    fn slot(&self, id: FlowId) -> Option<usize> {
        let pos = id.index.checked_sub(self.base)? as usize;
        if *self.live.get(pos)? && self.generation[pos] == id.generation {
            Some(pos)
        } else {
            None
        }
    }

    /// Allocate a flow with zeroed columns (`retx_slot` starts at
    /// [`NO_RETX_SLOT`]). Returns `None` only when the `u32` index space
    /// is exhausted — a table can hold at most `u32::MAX − base + 1`
    /// slots, live or free.
    pub fn alloc(&mut self) -> Option<FlowId> {
        let pos = match self.free.pop() {
            Some(p) => {
                self.stats.reused += 1;
                p as usize
            }
            None => {
                let pos = self.generation.len();
                if pos as u64 + u64::from(self.base) > u64::from(u32::MAX) {
                    self.stats.exhausted += 1;
                    return None;
                }
                self.stats.fresh += 1;
                self.generation.push(0);
                self.live.push(false);
                self.seq.push(0);
                self.remaining.push(0);
                self.retx_slot.push(NO_RETX_SLOT);
                self.mode.push(0);
                self.deadline_ns.push(0);
                self.occupancy.push(0);
                pos
            }
        };
        self.live[pos] = true;
        self.seq[pos] = 0;
        self.remaining[pos] = 0;
        self.retx_slot[pos] = NO_RETX_SLOT;
        self.mode[pos] = 0;
        self.deadline_ns[pos] = 0;
        self.occupancy[pos] = 0;
        self.live_count += 1;
        self.stats.high_water = self.stats.high_water.max(self.live_count as u64);
        Some(FlowId {
            index: self.base + pos as u32,
            generation: self.generation[pos],
        })
    }

    /// Release a flow back to the free list. Returns `false` (and counts
    /// a stale access) if the id was already released or superseded.
    pub fn release(&mut self, id: FlowId) -> bool {
        let Some(pos) = self.slot(id) else {
            self.stats.stale += 1;
            return false;
        };
        self.live[pos] = false;
        self.generation[pos] = self.generation[pos].wrapping_add(1);
        self.free.push(pos as u32);
        self.live_count -= 1;
        self.stats.released += 1;
        true
    }

    /// Whether `id` is still the slot's current tenant.
    pub fn contains(&self, id: FlowId) -> bool {
        self.slot(id).is_some()
    }

    /// The flow's next-sequence cursor.
    pub fn seq(&self, id: FlowId) -> Option<u64> {
        self.slot(id).map(|p| self.seq[p])
    }

    /// Store the next-sequence cursor. Returns `false` on a stale id.
    pub fn set_seq(&mut self, id: FlowId, seq: u64) -> bool {
        match self.slot(id) {
            Some(p) => {
                self.seq[p] = seq;
                true
            }
            None => false,
        }
    }

    /// Packets (or credits) the flow has left to emit.
    pub fn remaining(&self, id: FlowId) -> Option<u32> {
        self.slot(id).map(|p| self.remaining[p])
    }

    /// Store the remaining counter. Returns `false` on a stale id.
    pub fn set_remaining(&mut self, id: FlowId, remaining: u32) -> bool {
        match self.slot(id) {
            Some(p) => {
                self.remaining[p] = remaining;
                true
            }
            None => false,
        }
    }

    /// The flow's retransmit-buffer slot ([`NO_RETX_SLOT`] = none).
    pub fn retx_slot(&self, id: FlowId) -> Option<u32> {
        self.slot(id).map(|p| self.retx_slot[p])
    }

    /// Store the retransmit-buffer slot. Returns `false` on a stale id.
    pub fn set_retx_slot(&mut self, id: FlowId, slot: u32) -> bool {
        match self.slot(id) {
            Some(p) => {
                self.retx_slot[p] = slot;
                true
            }
            None => false,
        }
    }

    /// The flow's packed mode/EWMA word.
    pub fn mode_word(&self, id: FlowId) -> Option<ModeWord> {
        self.slot(id).map(|p| ModeWord::from_bits(self.mode[p]))
    }

    /// Store the mode word. Returns `false` on a stale id.
    pub fn set_mode_word(&mut self, id: FlowId, word: ModeWord) -> bool {
        match self.slot(id) {
            Some(p) => {
                self.mode[p] = word.bits();
                true
            }
            None => false,
        }
    }

    /// The flow's delivery deadline (nanoseconds of budget).
    pub fn deadline_ns(&self, id: FlowId) -> Option<u64> {
        self.slot(id).map(|p| self.deadline_ns[p])
    }

    /// Store the deadline. Returns `false` on a stale id.
    pub fn set_deadline_ns(&mut self, id: FlowId, ns: u64) -> bool {
        match self.slot(id) {
            Some(p) => {
                self.deadline_ns[p] = ns;
                true
            }
            None => false,
        }
    }

    /// The flow's occupancy counter (buffered bytes, delivered packets —
    /// the owning layer picks the unit).
    pub fn occupancy(&self, id: FlowId) -> Option<u32> {
        self.slot(id).map(|p| self.occupancy[p])
    }

    /// Store the occupancy counter. Returns `false` on a stale id.
    pub fn set_occupancy(&mut self, id: FlowId, occupancy: u32) -> bool {
        match self.slot(id) {
            Some(p) => {
                self.occupancy[p] = occupancy;
                true
            }
            None => false,
        }
    }

    /// Add to the occupancy counter (saturating). Returns `false` on a
    /// stale id.
    pub fn add_occupancy(&mut self, id: FlowId, delta: u32) -> bool {
        match self.slot(id) {
            Some(p) => {
                self.occupancy[p] = self.occupancy[p].saturating_add(delta);
                true
            }
            None => false,
        }
    }

    /// Sum of every live flow's occupancy counter.
    pub fn occupancy_total(&self) -> u64 {
        self.live
            .iter()
            .zip(&self.occupancy)
            .filter(|(live, _)| **live)
            .map(|(_, occ)| u64::from(*occ))
            .sum()
    }

    /// Live flows.
    pub fn live(&self) -> usize {
        self.live_count
    }

    /// Total slots ever created (live + free).
    pub fn capacity(&self) -> usize {
        self.generation.len()
    }

    /// Allocation counters.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_reuse_bumps_generation() {
        let mut t = FlowTable::new();
        let a = t.alloc().unwrap();
        assert_eq!(a.index(), 0);
        assert!(t.set_seq(a, 41));
        assert!(t.release(a));
        let b = t.alloc().unwrap();
        assert_eq!(b.index(), a.index(), "free list must hand back slot 0");
        assert_ne!(b.generation(), a.generation());
        assert_eq!(t.seq(b), Some(0), "reused slot starts zeroed");
        assert_eq!(t.capacity(), 1);
        assert_eq!(t.stats().reused, 1);
    }

    #[test]
    fn stale_id_is_inert() {
        let mut t = FlowTable::new();
        let a = t.alloc().unwrap();
        assert!(t.release(a));
        let b = t.alloc().unwrap();
        assert!(t.set_seq(b, 7));
        assert!(!t.contains(a));
        assert_eq!(t.seq(a), None);
        assert!(!t.set_seq(a, 999), "stale write rejected");
        assert!(!t.release(a), "double release rejected");
        assert_eq!(t.seq(b), Some(7), "tenant untouched by stale ops");
        assert_eq!(t.live(), 1);
        assert_eq!(t.stats().stale, 1, "only the stale release is counted");
    }

    #[test]
    fn columns_round_trip() {
        let mut t = FlowTable::new();
        let id = t.alloc().unwrap();
        assert!(t.set_seq(id, 1));
        assert!(t.set_remaining(id, 2));
        assert!(t.set_retx_slot(id, 3));
        assert!(t.set_deadline_ns(id, 4));
        assert!(t.set_occupancy(id, 5));
        let mut w = ModeWord::new();
        w.set_loss_ewma_ppm(6);
        assert!(t.set_mode_word(id, w));
        assert_eq!(t.seq(id), Some(1));
        assert_eq!(t.remaining(id), Some(2));
        assert_eq!(t.retx_slot(id), Some(3));
        assert_eq!(t.deadline_ns(id), Some(4));
        assert_eq!(t.occupancy(id), Some(5));
        assert_eq!(t.mode_word(id).map(|w| w.loss_ewma_ppm()), Some(6));
        assert!(t.add_occupancy(id, 10));
        assert_eq!(t.occupancy(id), Some(15));
        assert_eq!(t.occupancy_total(), 15);
    }

    #[test]
    fn exhaustion_near_u32_max() {
        let mut t = FlowTable::new().with_base_index(u32::MAX - 2);
        let a = t.alloc().unwrap();
        let b = t.alloc().unwrap();
        let c = t.alloc().unwrap();
        assert_eq!(c.index(), u32::MAX);
        assert_eq!(t.alloc(), None, "index space exhausted");
        assert_eq!(t.stats().exhausted, 1);
        // Release makes room again via the free list, not fresh growth.
        assert!(t.release(b));
        let d = t.alloc().unwrap();
        assert_eq!(d.index(), b.index());
        assert!(t.contains(a) && t.contains(c) && t.contains(d));
    }

    #[test]
    fn mode_word_fields_are_independent_and_saturate() {
        let mut w = ModeWord::new();
        w.set_loss_ewma_ppm(123_456);
        w.set_clean_intervals(3);
        w.set_dead_intervals(5);
        w.set_degraded(true);
        w.set_rehomed(true);
        w.set_shedding(true);
        assert_eq!(w.loss_ewma_ppm(), 123_456);
        assert_eq!(w.clean_intervals(), 3);
        assert_eq!(w.dead_intervals(), 5);
        assert!(w.degraded() && w.rehomed() && w.shedding());
        w.set_loss_ewma_ppm(u64::MAX);
        assert_eq!(w.loss_ewma_ppm(), (1 << 24) - 1, "ewma saturates");
        assert_eq!(w.clean_intervals(), 3, "neighbours untouched");
        w.set_clean_intervals(u32::MAX);
        assert_eq!(w.clean_intervals(), u32::from(u16::MAX));
        w.set_degraded(false);
        assert!(!w.degraded() && w.rehomed() && w.shedding());
        let copy = ModeWord::from_bits(w.bits());
        assert_eq!(copy, w);
    }
}
