//! Transport modes.
//!
//! "The protocol operates in a mode, in which a combination of features
//! are activated and configured — features such as retransmission, pacing,
//! and timeliness; and configurations such as where to retransmit from,
//! what pace to set, and the delivery deadline" (§5).

use mmt_wire::mmt::Features;
use mmt_wire::Ipv4Address;

/// Configuration values accompanying a mode's features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeParams {
    /// Where to request retransmission from (RETRANSMIT).
    pub retransmit_source: Option<(Ipv4Address, u16)>,
    /// Delivery budget from creation, ns, and the notify address
    /// (TIMELINESS).
    pub deadline_budget_ns: Option<(u64, Ipv4Address)>,
    /// Maximum age before the aged flag is set, ns (AGE).
    pub max_age_ns: Option<u64>,
    /// Pacing rate hint, Mbit/s (PACING).
    pub pacing_mbps: Option<u32>,
    /// Priority class (PRIORITY).
    pub priority_class: Option<u8>,
    /// Initial backpressure window, messages (BACKPRESSURE).
    pub backpressure_window: Option<u32>,
}

/// A named transport mode: the (config id, features, parameters) triple of
/// §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode {
    /// Human-readable name.
    pub name: &'static str,
    /// Active features.
    pub features: Features,
    /// Their configuration values.
    pub params: ModeParams,
}

impl Mode {
    /// Mode 0: pure experiment identification — what sensors emit (§5.3:
    /// "DAQ data starts out in mode 0 at the sensor").
    pub fn mode0_identification() -> Mode {
        Mode {
            name: "mode0-identification",
            features: Features::EMPTY,
            params: ModeParams::default(),
        }
    }

    /// Pilot mode 1: unreliable transport, sensor → DTN 1 (§5.4). Same
    /// wire format as mode 0; named separately because the pilot counts it
    /// as a distinct segment mode.
    pub fn mode1_unreliable() -> Mode {
        Mode {
            name: "mode1-unreliable",
            features: Features::EMPTY,
            params: ModeParams::default(),
        }
    }

    /// Pilot mode 2: age-sensitive, recoverable-loss transport between
    /// DTN 1 and DTN 2 (§5.4): sequence numbers, a named retransmission
    /// buffer, NAK-based recovery, age tracking, and a delivery deadline.
    pub fn mode2_wan(
        retransmit_source: (Ipv4Address, u16),
        deadline_budget_ns: u64,
        notify: Ipv4Address,
        max_age_ns: u64,
    ) -> Mode {
        Mode {
            name: "mode2-wan",
            features: Features::SEQUENCE
                | Features::RETRANSMIT
                | Features::TIMELINESS
                | Features::AGE
                | Features::ACK_NAK,
            params: ModeParams {
                retransmit_source: Some(retransmit_source),
                deadline_budget_ns: Some((deadline_budget_ns, notify)),
                max_age_ns: Some(max_age_ns),
                ..ModeParams::default()
            },
        }
    }

    /// Degraded mode 2: mode 2 plus DUPLICATED mirroring — what the border
    /// element shifts a flow into when the WAN segment is flapping and
    /// recoverable loss alone no longer meets the deadline budget. Same
    /// parameters as [`Mode::mode2_wan`]; the extra feature bit tells the
    /// border to emit a mirror copy of every upgraded frame.
    pub fn mode2_duplicated(
        retransmit_source: (Ipv4Address, u16),
        deadline_budget_ns: u64,
        notify: Ipv4Address,
        max_age_ns: u64,
    ) -> Mode {
        let base = Mode::mode2_wan(retransmit_source, deadline_budget_ns, notify, max_age_ns);
        Mode {
            name: "mode2-duplicated",
            features: base.features | Features::DUPLICATED,
            ..base
        }
    }

    /// Add a BACKPRESSURE window to this mode (load-shedding engaged at a
    /// retransmit-buffer occupancy high-watermark).
    #[must_use]
    pub fn with_backpressure(mut self, window: u32) -> Mode {
        self.features |= Features::BACKPRESSURE;
        self.params.backpressure_window = Some(window);
        self
    }

    /// Pilot mode 3: timeliness check at the destination (§5.4) — the
    /// same features as mode 2; the destination element additionally runs
    /// the deadline check.
    pub fn mode3_delivery(
        retransmit_source: (Ipv4Address, u16),
        deadline_budget_ns: u64,
        notify: Ipv4Address,
        max_age_ns: u64,
    ) -> Mode {
        Mode {
            name: "mode3-delivery",
            ..Mode::mode2_wan(retransmit_source, deadline_budget_ns, notify, max_age_ns)
        }
    }

    /// The upgrade descriptor handing this mode to a border element.
    pub fn as_upgrade(&self, seq_register: Option<usize>) -> mmt_dataplane::action::ModeUpgrade {
        mmt_dataplane::action::ModeUpgrade {
            sequence_from_register: if self.features.contains(Features::SEQUENCE) {
                seq_register
            } else {
                None
            },
            retransmit_source: self.params.retransmit_source,
            deadline_budget_ns: self.params.deadline_budget_ns,
            init_age: self.features.contains(Features::AGE),
            set_flags: self.features
                & (Features::ACK_NAK | Features::DUPLICATED | Features::ENCRYPTED),
            priority_class: self.params.priority_class,
            backpressure_window: self.params.backpressure_window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pilot_modes_have_expected_features() {
        assert!(Mode::mode0_identification().features.is_empty());
        assert!(Mode::mode1_unreliable().features.is_empty());
        let src = (Ipv4Address::new(10, 0, 0, 5), 47_000);
        let m2 = Mode::mode2_wan(src, 1_000_000, Ipv4Address::new(10, 0, 0, 9), 500_000);
        for f in [
            Features::SEQUENCE,
            Features::RETRANSMIT,
            Features::TIMELINESS,
            Features::AGE,
            Features::ACK_NAK,
        ] {
            assert!(m2.features.contains(f));
        }
        assert!(!m2.features.contains(Features::PACING));
        let m3 = Mode::mode3_delivery(src, 1, Ipv4Address::UNSPECIFIED, 1);
        assert_eq!(m3.features, m2.features);
        assert_eq!(m3.name, "mode3-delivery");
    }

    #[test]
    fn degraded_mode_adds_duplication_only() {
        let src = (Ipv4Address::new(10, 0, 0, 5), 47_000);
        let m2 = Mode::mode2_wan(src, 1_000_000, Ipv4Address::new(10, 0, 0, 9), 500_000);
        let dup = Mode::mode2_duplicated(src, 1_000_000, Ipv4Address::new(10, 0, 0, 9), 500_000);
        assert_eq!(dup.name, "mode2-duplicated");
        assert_eq!(dup.features, m2.features | Features::DUPLICATED);
        assert_eq!(dup.params, m2.params);
        // The upgrade descriptor carries the bit through to the wire.
        assert!(dup
            .as_upgrade(Some(0))
            .set_flags
            .contains(Features::DUPLICATED));
        assert!(!m2
            .as_upgrade(Some(0))
            .set_flags
            .contains(Features::DUPLICATED));
    }

    #[test]
    fn with_backpressure_sets_feature_and_window() {
        let src = (Ipv4Address::new(10, 0, 0, 5), 47_000);
        let m2 = Mode::mode2_wan(src, 1_000_000, Ipv4Address::new(10, 0, 0, 9), 500_000);
        assert!(!m2.features.contains(Features::BACKPRESSURE));
        let shed = m2.with_backpressure(32);
        assert!(shed.features.contains(Features::BACKPRESSURE));
        assert_eq!(shed.params.backpressure_window, Some(32));
        assert_eq!(shed.as_upgrade(Some(0)).backpressure_window, Some(32));
        // Everything else untouched.
        assert_eq!(shed.features - Features::BACKPRESSURE, m2.features);
        assert_eq!(shed.params.retransmit_source, m2.params.retransmit_source);
    }

    #[test]
    fn upgrade_descriptor_reflects_mode() {
        let src = (Ipv4Address::new(10, 0, 0, 5), 47_000);
        let m2 = Mode::mode2_wan(src, 2_000, Ipv4Address::new(10, 0, 0, 9), 1_000);
        let up = m2.as_upgrade(Some(0));
        assert_eq!(up.sequence_from_register, Some(0));
        assert_eq!(up.retransmit_source, Some(src));
        assert_eq!(
            up.deadline_budget_ns,
            Some((2_000, Ipv4Address::new(10, 0, 0, 9)))
        );
        assert!(up.init_age);
        assert!(up.set_flags.contains(Features::ACK_NAK));
        // Mode 0 upgrades to nothing.
        let up0 = Mode::mode0_identification().as_upgrade(Some(0));
        assert_eq!(up0.sequence_from_register, None);
        assert!(!up0.init_age);
        assert!(up0.set_flags.is_empty());
    }
}
