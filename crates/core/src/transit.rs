//! A mid-path transit buffer.
//!
//! The paper's headline behaviour: "Along its end-to-end path, the
//! protocol changes modes if its features or their configuration
//! changes — for example, if another retransmission buffer becomes
//! available, we would then avoid the need to retransmit from the source,
//! to reduce flow-completion time because of the shorter RTT" (§5).
//!
//! A [`TransitBuffer`] sits mid-WAN (port 0 = upstream, port 1 =
//! downstream). For passing data packets it (a) stores a bounded window
//! of them and (b) rewrites the retransmission-source extension *in
//! place* to name itself — a pure header update, no reframing, exactly
//! what P4 hardware plus attached storage (an Alveo card) can do. NAKs
//! from downstream are served locally; sequences it no longer holds are
//! re-NAKed upstream toward the previous buffer.

use crate::machine::{self, Input, Machine, Output};
use mmt_dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
use mmt_netsim::{Context, Node, Packet, PortId, Time};
use mmt_wire::mmt::{ControlRepr, CoreHeader, MmtRepr, NakRange, NakRepr, RetransmitExt};
use mmt_wire::{EthernetAddress, Ipv4Address};
use std::collections::{BTreeMap, VecDeque};

/// Port facing the source.
pub const PORT_UP: PortId = 0;
/// Port facing the destination.
pub const PORT_DOWN: PortId = 1;

/// Counters for a transit buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitBufferStats {
    /// Data packets forwarded downstream.
    pub forwarded: u64,
    /// Packets whose retransmit-source field was rewritten to this node.
    pub repointed: u64,
    /// NAKs received from downstream.
    pub naks_received: u64,
    /// Packets served from the local store.
    pub served: u64,
    /// Sequences forwarded upstream in a re-NAK.
    pub renaked: u64,
    /// Packets evicted from the store.
    pub evicted: u64,
}

/// The mid-path buffer node.
pub struct TransitBuffer {
    own_addr: Ipv4Address,
    own_port: u16,
    capacity_bytes: usize,
    /// Rewrite the retransmit source to this node (the multi-modal
    /// behaviour). When false the node still forwards and stores nothing —
    /// the "source-only retransmission" ablation of experiment E1.
    pub repoint: bool,
    store_bytes: usize,
    ring: VecDeque<u64>,
    store: BTreeMap<u64, Packet>,
    outbox: Vec<Output>,
    /// Counters.
    pub stats: TransitBufferStats,
}

impl TransitBuffer {
    /// Create a transit buffer that repoints retransmission at itself.
    pub fn new(own_addr: Ipv4Address, own_port: u16, capacity_bytes: usize) -> TransitBuffer {
        TransitBuffer {
            own_addr,
            own_port,
            capacity_bytes,
            repoint: true,
            store_bytes: 0,
            ring: VecDeque::new(),
            store: BTreeMap::new(),
            outbox: Vec::new(),
            stats: TransitBufferStats::default(),
        }
    }

    /// A pass-through variant that neither stores nor repoints (the
    /// ablation where recovery always goes back to the upstream buffer).
    pub fn passthrough() -> TransitBuffer {
        let mut t = TransitBuffer::new(Ipv4Address::UNSPECIFIED, 0, 0);
        t.repoint = false;
        t
    }

    /// Number of packets currently stored.
    pub fn stored_count(&self) -> usize {
        self.store.len()
    }

    fn retain(&mut self, seq: u64, pkt: Packet) {
        let len = pkt.len();
        while self.store_bytes + len > self.capacity_bytes {
            let Some(old) = self.ring.pop_front() else {
                break;
            };
            if let Some(old_pkt) = self.store.remove(&old) {
                self.store_bytes -= old_pkt.len();
                self.stats.evicted += 1;
            }
        }
        if len <= self.capacity_bytes {
            self.store_bytes += len;
            self.ring.push_back(seq);
            self.store.insert(seq, pkt);
        }
    }

    fn handle_nak(
        &mut self,
        out: &mut Vec<Output>,
        nak: NakRepr,
        experiment: mmt_wire::mmt::ExperimentId,
    ) {
        self.stats.naks_received += 1;
        let mut unserved: Vec<u64> = Vec::new();
        for range in &nak.ranges {
            for seq in range.first..=range.last {
                match self.store.get(&seq) {
                    Some(pkt) => {
                        out.push(Output::Transmit {
                            port: PORT_DOWN,
                            pkt: pkt.clone(),
                        });
                        self.stats.served += 1;
                    }
                    None => unserved.push(seq),
                }
            }
        }
        if unserved.is_empty() {
            return;
        }
        // Re-NAK the remainder upstream as compact ranges.
        self.stats.renaked += unserved.len() as u64;
        unserved.sort_unstable();
        let mut ranges: Vec<NakRange> = Vec::new();
        for s in unserved {
            match ranges.last_mut() {
                Some(last) if last.last + 1 == s => last.last = s,
                _ => ranges.push(NakRange { first: s, last: s }),
            }
        }
        let upstream_nak = NakRepr {
            requester: nak.requester,
            requester_port: nak.requester_port,
            ranges,
        };
        let ctrl = ControlRepr::Nak(upstream_nak).emit_packet(experiment);
        // mmt-lint: allow(P1, "parsing bytes emitted one line above; emit/parse are inverses")
        let repr = MmtRepr::parse(&ctrl).expect("just built");
        let frame = build_eth_mmt_frame(
            EthernetAddress([0x02, 0, 0, 0, 0, 0x30]),
            EthernetAddress::BROADCAST,
            &repr,
            &ctrl[repr.header_len()..],
        );
        out.push(Output::Transmit {
            port: PORT_UP,
            pkt: Packet::new(frame),
        });
    }

    fn on_frame(&mut self, port: PortId, mut pkt: Packet, out: &mut Vec<Output>) {
        let parsed = ParsedPacket::parse(pkt.bytes.clone(), port);
        let Some(off) = parsed.layers.mmt_offset() else {
            // Not MMT: forward transparently.
            let egress = if port == PORT_UP { PORT_DOWN } else { PORT_UP };
            out.push(Output::Transmit { port: egress, pkt });
            return;
        };
        // Control traffic.
        if let Ok((experiment, ctrl)) = ControlRepr::parse_packet(&parsed.bytes[off..]) {
            match (port, ctrl) {
                (PORT_DOWN, ControlRepr::Nak(nak)) if self.repoint => {
                    self.handle_nak(out, nak, experiment);
                }
                (PORT_DOWN, _) => out.push(Output::Transmit { port: PORT_UP, pkt }),
                (_, _) => out.push(Output::Transmit {
                    port: PORT_DOWN,
                    pkt,
                }),
            }
            return;
        }
        // Data traffic downstream: repoint + store, then forward.
        if port == PORT_UP {
            if self.repoint {
                let mut hdr = CoreHeader::new_unchecked(&mut pkt.bytes[off..]);
                let seq = hdr.sequence();
                if hdr.set_retransmit(RetransmitExt {
                    source: self.own_addr,
                    port: self.own_port,
                }) {
                    self.stats.repointed += 1;
                }
                if let Some(seq) = seq {
                    self.retain(seq, pkt.clone());
                }
            }
            self.stats.forwarded += 1;
            out.push(Output::Transmit {
                port: PORT_DOWN,
                pkt,
            });
        } else {
            // Data heading upstream is unusual; forward transparently.
            out.push(Output::Transmit { port: PORT_UP, pkt });
        }
    }
}

impl Machine for TransitBuffer {
    fn poll(&mut self, _now: Time, input: Input, out: &mut Vec<Output>) {
        match input {
            Input::Frame { port, pkt } => self.on_frame(port, pkt, out),
            Input::Start | Input::Timer { .. } | Input::Restart => {}
        }
    }

    fn outbox(&mut self) -> &mut Vec<Output> {
        &mut self.outbox
    }
}

impl Node for TransitBuffer {
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
        machine::step(self, ctx, Input::Frame { port, pkt });
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_netsim::{Bandwidth, LinkSpec, NodeId, Simulator, Time};
    use mmt_wire::mmt::ExperimentId;

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn exp() -> ExperimentId {
        ExperimentId::new(2, 0)
    }

    fn wan_frame(seq: u64) -> Packet {
        let repr = MmtRepr::data(exp())
            .with_sequence(seq)
            .with_retransmit(Ipv4Address::new(10, 0, 0, 5), 47_000);
        let mut payload = vec![0u8; 64];
        payload[..8].copy_from_slice(&seq.to_be_bytes());
        Packet::new(build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 5]),
            EthernetAddress([2, 0, 0, 0, 0, 6]),
            &repr,
            &payload,
        ))
    }

    fn nak_frame(first: u64, last: u64) -> Packet {
        let ctrl = ControlRepr::Nak(NakRepr {
            requester: Ipv4Address::new(10, 0, 0, 8),
            requester_port: 47_000,
            ranges: vec![NakRange { first, last }],
        })
        .emit_packet(exp());
        let repr = MmtRepr::parse(&ctrl).unwrap();
        Packet::new(build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 8]),
            EthernetAddress::BROADCAST,
            &repr,
            &ctrl[repr.header_len()..],
        ))
    }

    fn setup(buffer: TransitBuffer) -> (Simulator, NodeId, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        let mid = sim.add_node("mid", Box::new(buffer));
        let up = sim.add_node("up", Box::new(Sink));
        let down = sim.add_node("down", Box::new(Sink));
        let spec = LinkSpec::new(Bandwidth::gbps(100), Time::ZERO);
        sim.add_oneway(mid, PORT_UP, up, 0, spec);
        sim.add_oneway(mid, PORT_DOWN, down, 0, spec);
        (sim, mid, up, down)
    }

    #[test]
    fn repoints_retransmit_source_and_stores() {
        let (mut sim, mid, _, down) = setup(TransitBuffer::new(
            Ipv4Address::new(10, 0, 0, 7),
            47_001,
            1 << 20,
        ));
        for s in 0..5u64 {
            sim.inject(Time::from_micros(s), mid, PORT_UP, wan_frame(s));
        }
        sim.run();
        let got = sim.local_deliveries(down);
        assert_eq!(got.len(), 5);
        for (_, pkt) in got {
            let repr = ParsedPacket::parse(pkt.bytes.clone(), 0)
                .mmt_repr()
                .unwrap();
            assert_eq!(
                repr.retransmit().unwrap(),
                RetransmitExt {
                    source: Ipv4Address::new(10, 0, 0, 7),
                    port: 47_001
                }
            );
        }
        let b = sim.node_as::<TransitBuffer>(mid).unwrap();
        assert_eq!(b.stats.repointed, 5);
        assert_eq!(b.stored_count(), 5);
    }

    #[test]
    fn serves_naks_locally_and_renaks_missing_upstream() {
        let (mut sim, mid, up, down) = setup(TransitBuffer::new(
            Ipv4Address::new(10, 0, 0, 7),
            47_001,
            1 << 20,
        ));
        for s in 2..6u64 {
            sim.inject(Time::from_micros(s), mid, PORT_UP, wan_frame(s));
        }
        sim.run();
        let downstream_before = sim.local_deliveries(down).len();
        // NAK 0..=3: 2,3 held locally; 0,1 must be re-NAKed upstream.
        sim.inject(sim.now(), mid, PORT_DOWN, nak_frame(0, 3));
        sim.run();
        let served = sim.local_deliveries(down).len() - downstream_before;
        assert_eq!(served, 2);
        let upstream = sim.local_deliveries(up);
        assert_eq!(upstream.len(), 1, "one re-NAK upstream");
        let parsed = ParsedPacket::parse(upstream[0].1.bytes.clone(), 0);
        let off = parsed.layers.mmt_offset().unwrap();
        let (_, ctrl) = ControlRepr::parse_packet(&parsed.bytes[off..]).unwrap();
        match ctrl {
            ControlRepr::Nak(nak) => {
                assert_eq!(nak.ranges, vec![NakRange { first: 0, last: 1 }]);
                assert_eq!(nak.requester, Ipv4Address::new(10, 0, 0, 8));
            }
            other => panic!("expected NAK, got {other:?}"),
        }
        let b = sim.node_as::<TransitBuffer>(mid).unwrap();
        assert_eq!(b.stats.served, 2);
        assert_eq!(b.stats.renaked, 2);
    }

    #[test]
    fn passthrough_variant_leaves_headers_alone() {
        let (mut sim, mid, up, down) = setup(TransitBuffer::passthrough());
        sim.inject(Time::ZERO, mid, PORT_UP, wan_frame(0));
        sim.run();
        let got = sim.local_deliveries(down);
        assert_eq!(got.len(), 1);
        let repr = ParsedPacket::parse(got[0].1.bytes.clone(), 0)
            .mmt_repr()
            .unwrap();
        assert_eq!(
            repr.retransmit().unwrap().source,
            Ipv4Address::new(10, 0, 0, 5),
            "original source preserved"
        );
        // NAKs pass through upstream untouched.
        sim.inject(sim.now(), mid, PORT_DOWN, nak_frame(0, 0));
        sim.run();
        assert_eq!(sim.local_deliveries(up).len(), 1);
        let b = sim.node_as::<TransitBuffer>(mid).unwrap();
        assert_eq!(b.stats.repointed, 0);
        assert_eq!(b.stored_count(), 0);
        assert_eq!(b.stats.naks_received, 0);
    }

    #[test]
    fn non_mmt_traffic_forwards_transparently() {
        let (mut sim, mid, up, down) = setup(TransitBuffer::new(
            Ipv4Address::new(10, 0, 0, 7),
            1,
            1 << 20,
        ));
        sim.inject(Time::ZERO, mid, PORT_UP, Packet::new(vec![0u8; 64]));
        sim.inject(Time::ZERO, mid, PORT_DOWN, Packet::new(vec![0u8; 64]));
        sim.run();
        assert_eq!(sim.local_deliveries(down).len(), 1);
        assert_eq!(sim.local_deliveries(up).len(), 1);
    }

    #[test]
    fn store_respects_capacity() {
        let (mut sim, mid, _, _) = setup(TransitBuffer::new(Ipv4Address::new(10, 0, 0, 7), 1, 300));
        for s in 0..10u64 {
            sim.inject(Time::from_micros(s), mid, PORT_UP, wan_frame(s));
        }
        sim.run();
        let b = sim.node_as::<TransitBuffer>(mid).unwrap();
        // Each frame is 100 bytes (14 eth + 22 MMT + 64 payload): 3 fit.
        assert!(b.stored_count() <= 3, "{}", b.stored_count());
        assert!(b.stats.evicted >= 7);
    }
}
