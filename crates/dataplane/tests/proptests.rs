//! Property tests for the dataplane: parser robustness and the
//! mode-transition programs' invariants under arbitrary inputs.

use proptest::prelude::*;

use mmt_dataplane::action::Intrinsics;
use mmt_dataplane::parser::{build_eth_mmt_frame, build_ip_mmt_frame, ParsedPacket};
use mmt_dataplane::programs::{self, BorderConfig};
use mmt_wire::mmt::{ExperimentId, Features, MmtRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};

fn arb_experiment() -> impl Strategy<Value = ExperimentId> {
    (0u32..(1 << 24), any::<u8>()).prop_map(|(e, s)| ExperimentId::new(e, s))
}

fn border() -> mmt_dataplane::Pipeline {
    programs::daq_to_wan_border(BorderConfig {
        daq_port: 0,
        wan_port: 1,
        retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
        deadline_budget_ns: 1_000_000,
        notify_addr: Ipv4Address::new(10, 0, 0, 9),
        priority_class: None,
    })
}

proptest! {
    /// The parser never panics on arbitrary bytes, and a parse that finds
    /// MMT always exposes a valid header view.
    #[test]
    fn parser_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256), port in 0usize..8) {
        let pkt = ParsedPacket::parse(bytes, port);
        if pkt.layers.mmt_offset().is_some() {
            prop_assert!(pkt.mmt().is_some());
        }
    }

    /// The border upgrade preserves experiment identity and payload for
    /// any experiment/slice and payload, and stamps strictly increasing
    /// sequence numbers.
    #[test]
    fn border_upgrade_preserves_identity(
        exp in arb_experiment(),
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..16),
    ) {
        let mut pipeline = border();
        let mut last_seq = None;
        for payload in &payloads {
            let frame = build_eth_mmt_frame(
                EthernetAddress([2, 0, 0, 0, 0, 1]),
                EthernetAddress([2, 0, 0, 0, 0, 2]),
                &MmtRepr::data(exp),
                payload,
            );
            let mut pkt = ParsedPacket::parse(frame, 0);
            let disp = pipeline.process(&mut pkt, Intrinsics { now_ns: 50, created_at_ns: 10 });
            prop_assert_eq!(disp.egress, Some(1));
            let repr = pkt.mmt_repr().unwrap();
            prop_assert_eq!(repr.experiment, exp);
            let view = pkt.mmt().unwrap();
            prop_assert_eq!(view.payload(), &payload[..]);
            let seq = repr.sequence().unwrap();
            if let Some(prev) = last_seq {
                prop_assert_eq!(seq, prev + 1);
            }
            last_seq = Some(seq);
        }
    }

    /// Upgrade-then-downgrade over any feature subset returns to a header
    /// that parses cleanly and still carries the payload.
    #[test]
    fn upgrade_downgrade_roundtrip(
        exp in arb_experiment(),
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        strip_bits in 0u32..(1 << 10),
    ) {
        let strip = Features::from_bits_truncate(strip_bits);
        let mut up = border();
        let mut down = programs::downgrade_border(0, 1, strip);
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &MmtRepr::data(exp),
            &payload,
        );
        let mut pkt = ParsedPacket::parse(frame, 0);
        up.process(&mut pkt, Intrinsics { now_ns: 5, created_at_ns: 1 });
        pkt.ingress_port = 0;
        down.process(&mut pkt, Intrinsics { now_ns: 9, created_at_ns: 1 });
        let repr = pkt.mmt_repr().expect("still a valid header");
        prop_assert!(!repr.features.intersects(strip));
        let view = pkt.mmt().unwrap();
        prop_assert_eq!(view.payload(), &payload[..]);
    }

    /// IPv4-encapsulated rewrites keep the outer header checksum-valid
    /// for arbitrary payloads.
    #[test]
    fn ip_rewrite_keeps_checksum(
        exp in arb_experiment(),
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        seq in any::<u64>(),
    ) {
        let frame = build_ip_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            &MmtRepr::data(exp),
            &payload,
        );
        let mut pkt = ParsedPacket::parse(frame, 0);
        let upgraded = pkt.mmt_repr().unwrap().with_sequence(seq).with_age(7, false);
        prop_assert!(pkt.rewrite_mmt(&upgraded));
        let ip_off = pkt.layers.ip_offset().unwrap();
        let ip = mmt_wire::ipv4::Packet::new_checked(&pkt.bytes[ip_off..]).unwrap();
        prop_assert!(ip.verify_checksum());
        prop_assert_eq!(pkt.mmt_repr().unwrap().sequence(), Some(seq));
    }

    /// Age updates through the transit program are monotone in time and
    /// the aged flag latches.
    #[test]
    fn transit_age_monotone(
        times in proptest::collection::vec(1_000u64..1_000_000_000, 2..12),
        max_age in 1_000u64..100_000_000,
    ) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut transit = programs::wan_transit(0, 1, max_age);
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &MmtRepr::data(ExperimentId::new(2, 0)).with_age(0, false),
            b"payload!",
        );
        let mut pkt = ParsedPacket::parse(frame, 0);
        let mut last_age = 0;
        let mut was_aged = false;
        for &now in &sorted {
            pkt.ingress_port = 0;
            transit.process(&mut pkt, Intrinsics { now_ns: now, created_at_ns: 0 });
            let age = pkt.mmt_repr().unwrap().age().unwrap();
            prop_assert!(age.age_ns >= last_age);
            prop_assert_eq!(age.age_ns, now);
            if was_aged {
                prop_assert!(age.aged, "aged flag must latch");
            }
            was_aged = age.aged;
            last_age = age.age_ns;
        }
    }
}
