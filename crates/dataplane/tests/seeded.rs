//! Seeded randomized tests for the dataplane: parser robustness and the
//! mode-transition programs' invariants under arbitrary inputs. Cases are
//! generated from fixed `SimRng` seeds so failures replay exactly.

use mmt_dataplane::action::Intrinsics;
use mmt_dataplane::parser::{build_eth_mmt_frame, build_ip_mmt_frame, ParsedPacket};
use mmt_dataplane::programs::{self, BorderConfig};
use mmt_netsim::SimRng;
use mmt_wire::mmt::{ExperimentId, Features, MmtRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};

fn gen_experiment(rng: &mut SimRng) -> ExperimentId {
    ExperimentId::new(rng.next_bounded(1 << 24) as u32, rng.next_u64() as u8)
}

fn gen_bytes(rng: &mut SimRng, min: usize, max: usize) -> Vec<u8> {
    let len = min + rng.next_bounded((max - min) as u64) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn border() -> mmt_dataplane::Pipeline {
    programs::daq_to_wan_border(BorderConfig {
        daq_port: 0,
        wan_port: 1,
        retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
        deadline_budget_ns: 1_000_000,
        notify_addr: Ipv4Address::new(10, 0, 0, 9),
        priority_class: None,
    })
}

/// The parser never panics on arbitrary bytes, and a parse that finds
/// MMT always exposes a valid header view.
#[test]
fn parser_total_on_garbage() {
    let mut rng = SimRng::new(0xDA7A_0001);
    for _ in 0..2000 {
        let bytes = gen_bytes(&mut rng, 0, 256);
        let port = rng.next_bounded(8) as usize;
        let pkt = ParsedPacket::parse(bytes, port);
        if pkt.layers.mmt_offset().is_some() {
            assert!(pkt.mmt().is_some());
        }
    }
}

/// The border upgrade preserves experiment identity and payload for
/// any experiment/slice and payload, and stamps strictly increasing
/// sequence numbers.
#[test]
fn border_upgrade_preserves_identity() {
    let mut rng = SimRng::new(0xDA7A_0002);
    for _ in 0..100 {
        let exp = gen_experiment(&mut rng);
        let n_payloads = 1 + rng.next_bounded(15) as usize;
        let payloads: Vec<Vec<u8>> = (0..n_payloads)
            .map(|_| gen_bytes(&mut rng, 1, 64))
            .collect();
        let mut pipeline = border();
        let mut last_seq = None;
        for payload in &payloads {
            let frame = build_eth_mmt_frame(
                EthernetAddress([2, 0, 0, 0, 0, 1]),
                EthernetAddress([2, 0, 0, 0, 0, 2]),
                &MmtRepr::data(exp),
                payload,
            );
            let mut pkt = ParsedPacket::parse(frame, 0);
            let disp = pipeline.process(
                &mut pkt,
                Intrinsics {
                    now_ns: 50,
                    created_at_ns: 10,
                },
            );
            assert_eq!(disp.egress, Some(1));
            let repr = pkt.mmt_repr().unwrap();
            assert_eq!(repr.experiment, exp);
            let view = pkt.mmt().unwrap();
            assert_eq!(view.payload(), &payload[..]);
            let seq = repr.sequence().unwrap();
            if let Some(prev) = last_seq {
                assert_eq!(seq, prev + 1);
            }
            last_seq = Some(seq);
        }
    }
}

/// Upgrade-then-downgrade over any feature subset returns to a header
/// that parses cleanly and still carries the payload.
#[test]
fn upgrade_downgrade_roundtrip() {
    let mut rng = SimRng::new(0xDA7A_0003);
    for _ in 0..300 {
        let exp = gen_experiment(&mut rng);
        let payload = gen_bytes(&mut rng, 1, 128);
        let strip = Features::from_bits_truncate(rng.next_bounded(1 << 10) as u32);
        let mut up = border();
        let mut down = programs::downgrade_border(0, 1, strip);
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &MmtRepr::data(exp),
            &payload,
        );
        let mut pkt = ParsedPacket::parse(frame, 0);
        up.process(
            &mut pkt,
            Intrinsics {
                now_ns: 5,
                created_at_ns: 1,
            },
        );
        pkt.ingress_port = 0;
        down.process(
            &mut pkt,
            Intrinsics {
                now_ns: 9,
                created_at_ns: 1,
            },
        );
        let repr = pkt.mmt_repr().expect("still a valid header");
        assert!(!repr.features.intersects(strip));
        let view = pkt.mmt().unwrap();
        assert_eq!(view.payload(), &payload[..]);
    }
}

/// IPv4-encapsulated rewrites keep the outer header checksum-valid
/// for arbitrary payloads.
#[test]
fn ip_rewrite_keeps_checksum() {
    let mut rng = SimRng::new(0xDA7A_0004);
    for _ in 0..300 {
        let exp = gen_experiment(&mut rng);
        let payload = gen_bytes(&mut rng, 1, 512);
        let seq = rng.next_u64();
        let frame = build_ip_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            &MmtRepr::data(exp),
            &payload,
        );
        let mut pkt = ParsedPacket::parse(frame, 0);
        let upgraded = pkt
            .mmt_repr()
            .unwrap()
            .with_sequence(seq)
            .with_age(7, false);
        assert!(pkt.rewrite_mmt(&upgraded));
        let ip_off = pkt.layers.ip_offset().unwrap();
        let ip = mmt_wire::ipv4::Packet::new_checked(&pkt.bytes[ip_off..]).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(pkt.mmt_repr().unwrap().sequence(), Some(seq));
    }
}

/// Age updates through the transit program are monotone in time and
/// the aged flag latches.
#[test]
fn transit_age_monotone() {
    let mut rng = SimRng::new(0xDA7A_0005);
    for _ in 0..200 {
        let n_times = 2 + rng.next_bounded(10) as usize;
        let mut sorted: Vec<u64> = (0..n_times)
            .map(|_| 1_000 + rng.next_bounded(1_000_000_000 - 1_000))
            .collect();
        sorted.sort_unstable();
        let max_age = 1_000 + rng.next_bounded(100_000_000 - 1_000);
        let mut transit = programs::wan_transit(0, 1, max_age);
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &MmtRepr::data(ExperimentId::new(2, 0)).with_age(0, false),
            b"payload!",
        );
        let mut pkt = ParsedPacket::parse(frame, 0);
        let mut last_age = 0;
        let mut was_aged = false;
        for &now in &sorted {
            pkt.ingress_port = 0;
            transit.process(
                &mut pkt,
                Intrinsics {
                    now_ns: now,
                    created_at_ns: 0,
                },
            );
            let age = pkt.mmt_repr().unwrap().age().unwrap();
            assert!(age.age_ns >= last_age);
            assert_eq!(age.age_ns, now);
            if was_aged {
                assert!(age.aged, "aged flag must latch");
            }
            was_aged = age.aged;
            last_age = age.age_ns;
        }
    }
}
