//! Canned mode-transition programs — the P4 programs of the pilot study.
//!
//! The pilot (§5.4) uses three modes: (1) unreliable sensor→DTN 1
//! transport, (2) age-sensitive recoverable-loss transport DTN 1→DTN 2,
//! (3) a timeliness check at the destination. "The transport's mode is
//! changed as the data flows through different segments. Changing modes
//! involves changing the protocol header, done entirely in network
//! elements." Each function here builds the pipeline one of those network
//! elements runs.

use crate::action::{Action, ModeUpgrade};
use crate::pipeline::{Pipeline, PipelineBuilder};
use crate::table::{FieldValue, MatchField, Table, TableEntry};
use mmt_wire::mmt::{Features, CONFIG_CONTROL_V0, CONFIG_DATA_V0};
use mmt_wire::Ipv4Address;

/// Register indices used by all programs (control-plane convention).
pub mod regs {
    /// Per-element sequence counter for loss-recoverable streams.
    pub const SEQ_COUNTER: usize = 0;
    /// Data packets seen.
    pub const DATA_COUNT: usize = 1;
    /// Control packets seen.
    pub const CONTROL_COUNT: usize = 2;
    /// Number of registers every program allocates.
    pub const COUNT: usize = 3;
}

/// Typical single-element processing latency: a Tofino2 pipeline traverses
/// in well under a microsecond; 400 ns is a representative figure.
pub const SWITCH_LATENCY_NS: u64 = 400;

/// Parameters for the DAQ→WAN border upgrade (mode 1 → mode 2).
#[derive(Debug, Clone, Copy)]
pub struct BorderConfig {
    /// Port facing the DAQ network (sensors/DTN 1 side).
    pub daq_port: usize,
    /// Port facing the WAN.
    pub wan_port: usize,
    /// The retransmission buffer the WAN segment should use (DTN 1).
    pub retransmit_source: (Ipv4Address, u16),
    /// Delivery budget from packet creation; deadline = created + budget.
    pub deadline_budget_ns: u64,
    /// Where deadline-exceeded notifications go.
    pub notify_addr: Ipv4Address,
    /// Priority class for the stream on the WAN (None = unprioritized).
    pub priority_class: Option<u8>,
}

/// Build the border-element pipeline: upgrade data packets entering the
/// WAN to the age-sensitive, recoverable-loss mode; relay control packets
/// coming back from the WAN into the DAQ side (toward DTN 1).
pub fn daq_to_wan_border(cfg: BorderConfig) -> Pipeline {
    // Table 1: classify control vs data by config id.
    let mut classify = Table::new(
        "classify",
        vec![
            MatchField::IsMmt,
            MatchField::MmtConfigId,
            MatchField::IngressPort,
        ],
    );
    // Control from the WAN heads upstream to the retransmission buffer.
    classify.insert(TableEntry {
        key: vec![
            FieldValue::Exact(1),
            FieldValue::Exact(u64::from(CONFIG_CONTROL_V0)),
            FieldValue::Exact(cfg.wan_port as u64),
        ],
        priority: 10,
        actions: vec![
            Action::Count {
                register: regs::CONTROL_COUNT,
            },
            Action::Forward { port: cfg.daq_port },
        ],
    });
    // Data from the DAQ side is counted here and upgraded in table 2.
    classify.insert(TableEntry {
        key: vec![
            FieldValue::Exact(1),
            FieldValue::Exact(u64::from(CONFIG_DATA_V0)),
            FieldValue::Exact(cfg.daq_port as u64),
        ],
        priority: 5,
        actions: vec![Action::Count {
            register: regs::DATA_COUNT,
        }],
    });

    // Table 2: the mode upgrade + forward for DAQ-side data.
    let upgrade = ModeUpgrade {
        sequence_from_register: Some(regs::SEQ_COUNTER),
        retransmit_source: Some(cfg.retransmit_source),
        deadline_budget_ns: Some((cfg.deadline_budget_ns, cfg.notify_addr)),
        init_age: true,
        set_flags: Features::ACK_NAK,
        priority_class: cfg.priority_class,
        backpressure_window: None,
    };
    let mut upgrade_tbl = Table::new(
        "mode_upgrade",
        vec![MatchField::MmtConfigId, MatchField::IngressPort],
    );
    upgrade_tbl.insert(TableEntry {
        key: vec![
            FieldValue::Exact(u64::from(CONFIG_DATA_V0)),
            FieldValue::Exact(cfg.daq_port as u64),
        ],
        priority: 0,
        actions: vec![
            Action::Upgrade(upgrade),
            Action::Forward { port: cfg.wan_port },
        ],
    });

    PipelineBuilder::new()
        .table(classify)
        .table(upgrade_tbl)
        .registers(regs::COUNT)
        .latency_ns(SWITCH_LATENCY_NS)
        .build()
}

/// Apply a control-plane mode change to a border pipeline built by
/// [`daq_to_wan_border`]: rewrite the `mode_upgrade` entry's `Upgrade`
/// action **in place**, so in-flight traffic is re-stamped under the new
/// shape while already-forwarded packets keep the old one (the receiver's
/// sequence tracker absorbs the seam). Three knobs:
///
/// * `retransmit_source` — re-home NAK recovery to a live buffer (the
///   failover transition); sticky until the next explicit change.
/// * `Features::DUPLICATED` in `features` — mirror each upgraded data
///   packet back out `wan_port` (the degrade transition for a flapping
///   segment); clearing the bit removes the mirror.
/// * `backpressure_window` — stamp the BACKPRESSURE extension when
///   `features` carries that bit (the shed transition).
///
/// Returns `true` if an `Upgrade` action was found and rewritten.
pub fn apply_mode_change(
    pl: &mut Pipeline,
    wan_port: usize,
    features: Features,
    retransmit_source: Option<(Ipv4Address, u16)>,
    backpressure_window: Option<u32>,
) -> bool {
    let Some(table) = pl.table_mut_by_name("mode_upgrade") else {
        return false;
    };
    let duplicate = features.contains(Features::DUPLICATED);
    let mut rewritten = false;
    for entry in table.entries_mut() {
        let Some(pos) = entry
            .actions
            .iter()
            .position(|a| matches!(a, Action::Upgrade(_)))
        else {
            continue;
        };
        if let Action::Upgrade(up) = &mut entry.actions[pos] {
            if let Some(src) = retransmit_source {
                up.retransmit_source = Some(src);
            }
            if duplicate {
                up.set_flags |= Features::DUPLICATED;
            } else {
                up.set_flags = up.set_flags - Features::DUPLICATED;
            }
            if features.contains(Features::BACKPRESSURE) {
                if let Some(w) = backpressure_window {
                    up.backpressure_window = Some(w);
                }
            } else {
                up.backpressure_window = None;
            }
            rewritten = true;
        }
        // Keep a Mirror action in lockstep with DUPLICATED, placed right
        // after the Upgrade so the copy is cloned from the re-stamped
        // header (and carries the new sequence number).
        let mirror_at = entry
            .actions
            .iter()
            .position(|a| matches!(a, Action::Mirror { .. }));
        match (duplicate, mirror_at) {
            (true, None) => entry
                .actions
                .insert(pos + 1, Action::Mirror { port: wan_port }),
            (false, Some(i)) => {
                entry.actions.remove(i);
            }
            _ => {}
        }
    }
    rewritten
}

/// Build a WAN transit-element pipeline: update the age field on data
/// packets travelling downstream (ingress `up_port` → egress `down_port`),
/// pass control packets upstream, and forward everything else.
pub fn wan_transit(up_port: usize, down_port: usize, max_age_ns: u64) -> Pipeline {
    let mut tbl = Table::new(
        "transit",
        vec![
            MatchField::IsMmt,
            MatchField::MmtConfigId,
            MatchField::IngressPort,
        ],
    );
    tbl.insert(TableEntry {
        key: vec![
            FieldValue::Exact(1),
            FieldValue::Exact(u64::from(CONFIG_DATA_V0)),
            FieldValue::Exact(up_port as u64),
        ],
        priority: 5,
        actions: vec![
            Action::Count {
                register: regs::DATA_COUNT,
            },
            Action::UpdateAge { max_age_ns },
            Action::Forward { port: down_port },
        ],
    });
    tbl.insert(TableEntry {
        key: vec![
            FieldValue::Exact(1),
            FieldValue::Exact(u64::from(CONFIG_CONTROL_V0)),
            FieldValue::Exact(down_port as u64),
        ],
        priority: 5,
        actions: vec![
            Action::Count {
                register: regs::CONTROL_COUNT,
            },
            Action::Forward { port: up_port },
        ],
    });
    PipelineBuilder::new()
        .table(tbl)
        .registers(regs::COUNT)
        .latency_ns(SWITCH_LATENCY_NS)
        .build()
}

/// Build the destination-side pipeline (mode 3): run the timeliness check,
/// then hand data to the host port; notifications ride out `notify_port`
/// (toward the address in the timeliness extension).
pub fn destination_check(wan_port: usize, host_port: usize, notify_port: usize) -> Pipeline {
    let mut tbl = Table::new(
        "timeliness",
        vec![
            MatchField::IsMmt,
            MatchField::MmtConfigId,
            MatchField::IngressPort,
        ],
    );
    tbl.insert(TableEntry {
        key: vec![
            FieldValue::Exact(1),
            FieldValue::Exact(u64::from(CONFIG_DATA_V0)),
            FieldValue::Exact(wan_port as u64),
        ],
        priority: 0,
        actions: vec![
            Action::Count {
                register: regs::DATA_COUNT,
            },
            Action::CheckDeadline { notify_port },
            Action::Forward { port: host_port },
        ],
    });
    // Control packets from the host (NAKs) go back toward the WAN.
    tbl.insert(TableEntry {
        key: vec![
            FieldValue::Exact(1),
            FieldValue::Exact(u64::from(CONFIG_CONTROL_V0)),
            FieldValue::Exact(host_port as u64),
        ],
        priority: 0,
        actions: vec![
            Action::Count {
                register: regs::CONTROL_COUNT,
            },
            Action::Forward { port: wan_port },
        ],
    });
    PipelineBuilder::new()
        .table(tbl)
        .registers(regs::COUNT)
        .latency_ns(SWITCH_LATENCY_NS)
        .build()
}

/// Build an alert-duplication pipeline (§5.1 "streams can be duplicated in
/// the network ⑤ to reach several downstream researchers directly"): data
/// packets of `alert_experiment` are mirrored to every port in
/// `subscriber_ports` in addition to the primary path.
pub fn alert_duplicator(
    in_port: usize,
    primary_port: usize,
    alert_experiment: u32,
    subscriber_ports: &[usize],
) -> Pipeline {
    let mut tbl = Table::new(
        "duplicate",
        vec![
            MatchField::MmtConfigId,
            MatchField::MmtExperiment,
            MatchField::IngressPort,
        ],
    );
    let mut actions: Vec<Action> = subscriber_ports
        .iter()
        .map(|&p| Action::Mirror { port: p })
        .collect();
    actions.push(Action::Forward { port: primary_port });
    tbl.insert(TableEntry {
        key: vec![
            FieldValue::Exact(u64::from(CONFIG_DATA_V0)),
            FieldValue::Exact(u64::from(alert_experiment)),
            FieldValue::Exact(in_port as u64),
        ],
        priority: 10,
        actions,
    });
    // Everything else follows the primary path.
    tbl.insert(TableEntry {
        key: vec![
            FieldValue::Any,
            FieldValue::Any,
            FieldValue::Exact(in_port as u64),
        ],
        priority: 0,
        actions: vec![Action::Forward { port: primary_port }],
    });
    PipelineBuilder::new()
        .table(tbl)
        .registers(regs::COUNT)
        .latency_ns(SWITCH_LATENCY_NS)
        .build()
}

/// Build a WAN→campus downgrade pipeline: strip the WAN-only extensions
/// (`remove`) from data packets before they enter a network that does not
/// support them, and forward.
pub fn downgrade_border(in_port: usize, out_port: usize, remove: Features) -> Pipeline {
    let mut tbl = Table::new(
        "downgrade",
        vec![MatchField::MmtConfigId, MatchField::IngressPort],
    );
    tbl.insert(TableEntry {
        key: vec![
            FieldValue::Exact(u64::from(CONFIG_DATA_V0)),
            FieldValue::Exact(in_port as u64),
        ],
        priority: 0,
        actions: vec![
            Action::Downgrade { remove },
            Action::Forward { port: out_port },
        ],
    });
    PipelineBuilder::new()
        .table(tbl)
        .registers(regs::COUNT)
        .latency_ns(SWITCH_LATENCY_NS)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Intrinsics;
    use crate::parser::{build_eth_mmt_frame, ParsedPacket};
    use crate::resources::ResourceBudget;
    use mmt_wire::mmt::{ControlRepr, ExperimentId, MmtRepr, NakRange, NakRepr};
    use mmt_wire::EthernetAddress;

    fn data_frame(experiment: u32) -> Vec<u8> {
        build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &MmtRepr::data(ExperimentId::new(experiment, 0)),
            b"record",
        )
    }

    fn control_frame(experiment: u32) -> Vec<u8> {
        let nak = NakRepr {
            requester: Ipv4Address::new(10, 0, 0, 8),
            requester_port: 47_000,
            ranges: vec![NakRange { first: 1, last: 2 }],
        };
        let pkt = ControlRepr::Nak(nak).emit_packet(ExperimentId::new(experiment, 0));
        let repr = MmtRepr::parse(&pkt).unwrap();
        build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 3]),
            EthernetAddress([2, 0, 0, 0, 0, 4]),
            &repr,
            &pkt[repr.header_len()..],
        )
    }

    fn intr(now: u64, created: u64) -> Intrinsics {
        Intrinsics {
            now_ns: now,
            created_at_ns: created,
        }
    }

    fn border() -> Pipeline {
        daq_to_wan_border(BorderConfig {
            daq_port: 0,
            wan_port: 1,
            retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
            deadline_budget_ns: 1_000_000,
            notify_addr: Ipv4Address::new(10, 0, 0, 9),
            priority_class: Some(1),
        })
    }

    #[test]
    fn border_upgrades_data_toward_wan() {
        let mut pl = border();
        let mut p = ParsedPacket::parse(data_frame(2), 0);
        let d = pl.process(&mut p, intr(5_000, 4_000));
        assert_eq!(d.egress, Some(1));
        let r = p.mmt_repr().unwrap();
        assert_eq!(r.sequence(), Some(0));
        assert_eq!(r.retransmit().unwrap().port, 47_000);
        assert_eq!(r.timeliness().unwrap().deadline_ns, 4_000 + 1_000_000);
        assert_eq!(r.age().unwrap().age_ns, 1_000);
        assert!(r.features.contains(Features::ACK_NAK));
        assert_eq!(r.priority_class(), Some(1));
        assert_eq!(pl.register(regs::DATA_COUNT), 1);
        assert_eq!(pl.register(regs::SEQ_COUNTER), 1);
    }

    #[test]
    fn border_relays_control_upstream() {
        let mut pl = border();
        let mut p = ParsedPacket::parse(control_frame(2), 1); // from WAN
        let d = pl.process(&mut p, intr(0, 0));
        assert_eq!(d.egress, Some(0));
        assert_eq!(pl.register(regs::CONTROL_COUNT), 1);
        // Control header untouched (no upgrade applied).
        let off = p.layers.mmt_offset().unwrap();
        assert!(ControlRepr::parse_packet(&p.bytes[off..]).is_ok());
    }

    #[test]
    fn border_ignores_data_from_wan_side() {
        let mut pl = border();
        let mut p = ParsedPacket::parse(data_frame(2), 1); // wrong port
        let d = pl.process(&mut p, intr(0, 0));
        assert_eq!(d.egress, None);
        assert!(!d.dropped); // no match, default empty action: implicit drop
    }

    #[test]
    fn transit_updates_age_downstream_only() {
        let mut pl = wan_transit(0, 1, 500);
        // Build an already-upgraded packet.
        let repr = MmtRepr::data(ExperimentId::new(2, 0)).with_age(0, false);
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &repr,
            b"x",
        );
        let mut p = ParsedPacket::parse(frame, 0);
        let d = pl.process(&mut p, intr(800, 0));
        assert_eq!(d.egress, Some(1));
        let age = p.mmt_repr().unwrap().age().unwrap();
        assert_eq!(age.age_ns, 800);
        assert!(age.aged, "800 > 500 threshold");
        // Control packets flow the other way.
        let mut c = ParsedPacket::parse(control_frame(2), 1);
        let d = pl.process(&mut c, intr(0, 0));
        assert_eq!(d.egress, Some(0));
    }

    #[test]
    fn destination_emits_notification_for_late_data() {
        let mut pl = destination_check(0, 1, 2);
        let repr = MmtRepr::data(ExperimentId::new(2, 0))
            .with_sequence(3)
            .with_timeliness(1_000, Ipv4Address::new(10, 0, 0, 9))
            .with_age(0, false);
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &repr,
            b"x",
        );
        let mut p = ParsedPacket::parse(frame, 0);
        let d = pl.process(&mut p, intr(2_000, 0));
        assert_eq!(d.egress, Some(1), "data still delivered, marked aged");
        assert_eq!(d.emitted.len(), 1);
        assert_eq!(d.emitted[0].0, 2);
        // NAK from the host goes back to the WAN.
        let mut c = ParsedPacket::parse(control_frame(2), 1);
        let d = pl.process(&mut c, intr(0, 0));
        assert_eq!(d.egress, Some(0));
    }

    #[test]
    fn duplicator_mirrors_alert_stream_only() {
        let mut pl = alert_duplicator(0, 1, 7, &[2, 3]);
        let mut alert = ParsedPacket::parse(data_frame(7), 0);
        let d = pl.process(&mut alert, intr(0, 0));
        assert_eq!(d.egress, Some(1));
        assert_eq!(d.mirrors, vec![2, 3]);
        assert_eq!(d.emitted.len(), 2);
        let mut bulk = ParsedPacket::parse(data_frame(8), 0);
        let d = pl.process(&mut bulk, intr(0, 0));
        assert_eq!(d.egress, Some(1));
        assert!(d.mirrors.is_empty());
    }

    #[test]
    fn downgrade_strips_wan_features() {
        let mut pl = downgrade_border(
            0,
            1,
            Features::RETRANSMIT | Features::ACK_NAK | Features::TIMELINESS,
        );
        let repr = MmtRepr::data(ExperimentId::new(2, 0))
            .with_sequence(4)
            .with_retransmit(Ipv4Address::new(10, 0, 0, 5), 1)
            .with_timeliness(99, Ipv4Address::new(10, 0, 0, 9))
            .with_age(10, false)
            .with_flags(Features::ACK_NAK);
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &repr,
            b"x",
        );
        let mut p = ParsedPacket::parse(frame, 0);
        let d = pl.process(&mut p, intr(0, 0));
        assert_eq!(d.egress, Some(1));
        let r = p.mmt_repr().unwrap();
        assert_eq!(r.retransmit(), None);
        assert_eq!(r.timeliness(), None);
        assert!(!r.features.contains(Features::ACK_NAK));
        assert_eq!(r.sequence(), Some(4), "sequence survives");
        assert_eq!(r.age().unwrap().age_ns, 10, "age survives");
    }

    #[test]
    fn mode_change_rewrites_upgrade_entry_in_flight() {
        let mut pl = border();
        // First packet under the base mode: no mirror, DTN 1 as source.
        let mut p0 = ParsedPacket::parse(data_frame(2), 0);
        let d0 = pl.process(&mut p0, intr(0, 0));
        assert!(d0.mirrors.is_empty());
        let r0 = p0.mmt_repr().unwrap();
        assert_eq!(
            r0.retransmit().unwrap().source,
            Ipv4Address::new(10, 0, 0, 5)
        );
        assert_eq!(r0.sequence(), Some(0));

        // Degrade + re-home: duplicate over the WAN, recover from 10.0.0.6.
        let standby = (Ipv4Address::new(10, 0, 0, 6), 47_001);
        assert!(apply_mode_change(
            &mut pl,
            1,
            Features::DUPLICATED,
            Some(standby),
            None,
        ));
        let mut p1 = ParsedPacket::parse(data_frame(2), 0);
        let d1 = pl.process(&mut p1, intr(0, 0));
        assert_eq!(d1.mirrors, vec![1], "mirror copy toward the WAN");
        assert_eq!(d1.emitted.len(), 1);
        let r1 = p1.mmt_repr().unwrap();
        assert_eq!(r1.retransmit().unwrap().source, standby.0);
        assert_eq!(r1.retransmit().unwrap().port, standby.1);
        assert!(r1.features.contains(Features::DUPLICATED));
        assert_eq!(
            r1.sequence(),
            Some(1),
            "sequence register survives the change"
        );
        // The mirror copy carries the re-stamped header too.
        let copy = ParsedPacket::parse(d1.emitted[0].1.clone(), 0);
        let rc = copy
            .layers
            .mmt_offset()
            .map(|off| mmt_wire::mmt::MmtRepr::parse(&copy.bytes[off..]).unwrap());
        let rc = rc.unwrap();
        assert_eq!(rc.sequence(), Some(1));
        assert_eq!(rc.retransmit().unwrap().source, standby.0);

        // Recover: mirror removed; the re-home is sticky.
        assert!(apply_mode_change(&mut pl, 1, Features::EMPTY, None, None));
        let mut p2 = ParsedPacket::parse(data_frame(2), 0);
        let d2 = pl.process(&mut p2, intr(0, 0));
        assert!(d2.mirrors.is_empty());
        let r2 = p2.mmt_repr().unwrap();
        assert!(!r2.features.contains(Features::DUPLICATED));
        assert_eq!(r2.retransmit().unwrap().source, standby.0, "re-home sticks");
    }

    #[test]
    fn mode_change_engages_and_releases_backpressure_window() {
        let mut pl = border();
        assert!(apply_mode_change(
            &mut pl,
            1,
            Features::BACKPRESSURE,
            None,
            Some(32),
        ));
        let mut p = ParsedPacket::parse(data_frame(2), 0);
        pl.process(&mut p, intr(0, 0));
        assert_eq!(p.mmt_repr().unwrap().backpressure_window(), Some(32));
        assert!(apply_mode_change(&mut pl, 1, Features::EMPTY, None, None));
        let mut p = ParsedPacket::parse(data_frame(2), 0);
        pl.process(&mut p, intr(0, 0));
        assert_eq!(p.mmt_repr().unwrap().backpressure_window(), None);
    }

    #[test]
    fn mode_change_on_foreign_pipeline_is_a_no_op() {
        let mut pl = wan_transit(0, 1, 1);
        assert!(!apply_mode_change(
            &mut pl,
            1,
            Features::DUPLICATED,
            None,
            None
        ));
    }

    #[test]
    fn all_programs_fit_hardware_budgets() {
        // Experiment E8's core assertion, unit-test form.
        let tofino = ResourceBudget::tofino2();
        let alveo = ResourceBudget::alveo_smartnic();
        for (name, pl) in [
            ("border", border()),
            ("transit", wan_transit(0, 1, 1)),
            ("destination", destination_check(0, 1, 2)),
            ("duplicator", alert_duplicator(0, 1, 7, &[2, 3, 4])),
            ("downgrade", downgrade_border(0, 1, Features::RETRANSMIT)),
        ] {
            let usage = pl.resource_usage();
            assert!(
                tofino.admits(&usage),
                "{name} exceeds Tofino2 budget: {usage:?}"
            );
            assert!(
                alveo.admits(&usage),
                "{name} exceeds Alveo budget: {usage:?}"
            );
        }
    }
}
