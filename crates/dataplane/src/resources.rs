//! Hardware resource budgets.
//!
//! The paper restricts in-network support to "features that existing P4
//! hardware supports well" (§5). Experiment E8 checks that every
//! mode-transition program in this repository fits a Tofino2-flavoured
//! budget — the numbers below are order-of-magnitude public figures, not
//! vendor specifications, and are deliberately conservative.

/// What a pipeline consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Number of match-action tables (≈ logical stages when dependent).
    pub tables: usize,
    /// Total installed entries.
    pub entries: usize,
    /// Total key fields across tables (crossbar pressure proxy).
    pub key_fields: usize,
    /// Registers used.
    pub registers: usize,
}

/// What the target offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Maximum dependent tables in one pass (Tofino2: 20 MAU stages,
    /// several tables can share a stage; we budget one table per stage to
    /// stay conservative).
    pub max_tables: usize,
    /// Maximum total entries (SRAM/TCAM capacity proxy).
    pub max_entries: usize,
    /// Maximum key fields across the program.
    pub max_key_fields: usize,
    /// Maximum registers.
    pub max_registers: usize,
}

impl ResourceBudget {
    /// A conservative Tofino2-class switch budget.
    pub fn tofino2() -> ResourceBudget {
        ResourceBudget {
            max_tables: 20,
            max_entries: 100_000,
            max_key_fields: 64,
            max_registers: 4_096,
        }
    }

    /// A smaller Alveo smartNIC-class budget (header processing in FPGA
    /// lookaside logic; fewer parallel tables, more registers).
    pub fn alveo_smartnic() -> ResourceBudget {
        ResourceBudget {
            max_tables: 8,
            max_entries: 16_384,
            max_key_fields: 24,
            max_registers: 65_536,
        }
    }

    /// Does `usage` fit?
    pub fn admits(&self, usage: &ResourceUsage) -> bool {
        usage.tables <= self.max_tables
            && usage.entries <= self.max_entries
            && usage.key_fields <= self.max_key_fields
            && usage.registers <= self.max_registers
    }

    /// Parts-per-million of the binding constraint consumed
    /// (1_000_000 = exactly full). Integer so E8 verdicts digest
    /// identically everywhere.
    pub fn pressure_ppm(&self, usage: &ResourceUsage) -> u64 {
        [
            (usage.tables as u64) * 1_000_000 / (self.max_tables as u64).max(1),
            (usage.entries as u64) * 1_000_000 / (self.max_entries as u64).max(1),
            (usage.key_fields as u64) * 1_000_000 / (self.max_key_fields as u64).max(1),
            (usage.registers as u64) * 1_000_000 / (self.max_registers as u64).max(1),
        ]
        .into_iter()
        .max()
        .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_within_budget() {
        let b = ResourceBudget::tofino2();
        let u = ResourceUsage {
            tables: 4,
            entries: 100,
            key_fields: 8,
            registers: 16,
        };
        assert!(b.admits(&u));
        assert!(b.pressure_ppm(&u) < 250_000);
    }

    #[test]
    fn rejects_over_budget() {
        let b = ResourceBudget::alveo_smartnic();
        let u = ResourceUsage {
            tables: 9,
            ..ResourceUsage::default()
        };
        assert!(!b.admits(&u));
        assert!(b.pressure_ppm(&u) > 1_000_000);
    }

    #[test]
    fn pressure_tracks_binding_constraint() {
        let b = ResourceBudget::tofino2();
        let u = ResourceUsage {
            tables: 20,
            entries: 1,
            key_fields: 1,
            registers: 1,
        };
        assert_eq!(b.pressure_ppm(&u), 1_000_000);
        assert!(b.admits(&u));
    }
}
