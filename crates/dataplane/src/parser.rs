//! The fixed parse graph: Ethernet → (IPv4 →) MMT.
//!
//! MMT appears either directly above Ethernet (EtherType 0x88B5, inside
//! DAQ networks — Req 1) or above IPv4 (protocol 253, on WAN segments).
//! The parser locates the MMT header without copying; actions that grow or
//! shrink the header rebuild the frame.

use mmt_wire::ethernet::{self, EtherType, Frame};
use mmt_wire::ipv4::{self, Packet as Ipv4Packet, Protocol};
use mmt_wire::mmt::{CoreHeader, MmtRepr};

/// Which encapsulation layers were found in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketLayers {
    /// Ethernet, then something we don't parse (not MMT traffic).
    EthernetOnly,
    /// Ethernet → MMT (DAQ network framing).
    EthernetMmt {
        /// Byte offset of the MMT header.
        mmt_offset: usize,
    },
    /// Ethernet → IPv4, payload is not MMT.
    EthernetIpv4,
    /// Ethernet → IPv4 → MMT (WAN framing).
    EthernetIpv4Mmt {
        /// Byte offset of the IPv4 header.
        ip_offset: usize,
        /// Byte offset of the MMT header.
        mmt_offset: usize,
    },
    /// Ethernet → IPv4 → UDP tunnel → MMT (networks that drop unknown IP
    /// protocols; the tunnel rides [`mmt_wire::udp::MMT_TUNNEL_PORT`]).
    EthernetIpv4UdpMmt {
        /// Byte offset of the IPv4 header.
        ip_offset: usize,
        /// Byte offset of the UDP header.
        udp_offset: usize,
        /// Byte offset of the MMT header.
        mmt_offset: usize,
    },
    /// The frame failed to parse (truncated or malformed).
    Malformed,
}

impl PacketLayers {
    /// The MMT header offset, if the frame carries MMT.
    pub fn mmt_offset(&self) -> Option<usize> {
        match *self {
            PacketLayers::EthernetMmt { mmt_offset }
            | PacketLayers::EthernetIpv4Mmt { mmt_offset, .. }
            | PacketLayers::EthernetIpv4UdpMmt { mmt_offset, .. } => Some(mmt_offset),
            _ => None,
        }
    }

    /// The IPv4 header offset, if present.
    pub fn ip_offset(&self) -> Option<usize> {
        match *self {
            PacketLayers::EthernetIpv4Mmt { ip_offset, .. }
            | PacketLayers::EthernetIpv4UdpMmt { ip_offset, .. } => Some(ip_offset),
            PacketLayers::EthernetIpv4 => Some(ethernet::HEADER_LEN),
            _ => None,
        }
    }

    /// The UDP header offset, when the MMT rides the UDP tunnel.
    pub fn udp_offset(&self) -> Option<usize> {
        match *self {
            PacketLayers::EthernetIpv4UdpMmt { udp_offset, .. } => Some(udp_offset),
            _ => None,
        }
    }
}

/// A frame plus its parse result — what one pipeline invocation sees.
#[derive(Debug)]
pub struct ParsedPacket {
    /// The frame bytes (may be rewritten by actions).
    pub bytes: Vec<u8>,
    /// Parse result.
    pub layers: PacketLayers,
    /// The port the frame arrived on.
    pub ingress_port: usize,
}

impl ParsedPacket {
    /// Parse a frame arriving on `ingress_port`.
    pub fn parse(bytes: Vec<u8>, ingress_port: usize) -> ParsedPacket {
        let layers = classify_layers(&bytes);
        ParsedPacket {
            bytes,
            layers,
            ingress_port,
        }
    }

    /// Re-run the parser after an action rewrote the frame.
    pub fn reparse(&mut self) {
        self.layers = classify_layers(&self.bytes);
    }

    /// A checked MMT header view, if the frame carries MMT.
    pub fn mmt(&self) -> Option<CoreHeader<&[u8]>> {
        let off = self.layers.mmt_offset()?;
        CoreHeader::new_checked(&self.bytes[off..]).ok()
    }

    /// The parsed owned MMT header, if present and valid.
    pub fn mmt_repr(&self) -> Option<MmtRepr> {
        let off = self.layers.mmt_offset()?;
        MmtRepr::parse(&self.bytes[off..]).ok()
    }

    /// Replace the MMT header with `new_repr`, preserving the payload and
    /// any outer encapsulation (fixing the IPv4 length/checksum when the
    /// header above is IPv4). This is the frame surgery a mode-transition
    /// element performs.
    pub fn rewrite_mmt(&mut self, new_repr: &MmtRepr) -> bool {
        let Some(mmt_off) = self.layers.mmt_offset() else {
            return false;
        };
        let Ok(old) = MmtRepr::parse(&self.bytes[mmt_off..]) else {
            return false;
        };
        let old_hdr_len = old.header_len();
        let payload_start = mmt_off + old_hdr_len;
        let new_hdr_len = new_repr.header_len();
        let mut out = Vec::with_capacity(mmt_off + new_hdr_len + self.bytes.len() - payload_start);
        out.extend_from_slice(&self.bytes[..mmt_off]);
        out.resize(mmt_off + new_hdr_len, 0);
        if new_repr.emit(&mut out[mmt_off..]).is_err() {
            return false;
        }
        out.extend_from_slice(&self.bytes[payload_start..]);
        self.bytes = out;
        // Fix outer UDP and IPv4 lengths + checksums if present.
        if let Some(udp_off) = self.layers.udp_offset() {
            let udp_total = self.bytes.len() - udp_off;
            if udp_total <= usize::from(u16::MAX) {
                let mut udp = mmt_wire::udp::Datagram::new_unchecked(&mut self.bytes[udp_off..]);
                udp.set_len(udp_total as u16);
                // Tunnel checksum left at zero (legal for UDP over IPv4);
                // the inner MMT header is integrity-checked end to end.
            }
        }
        if let Some(ip_off) = self.layers.ip_offset() {
            let total = self.bytes.len() - ip_off;
            if total <= usize::from(u16::MAX) {
                let mut ip = Ipv4Packet::new_unchecked(&mut self.bytes[ip_off..]);
                ip.set_total_len(total as u16);
                ip.fill_checksum();
            }
        }
        self.reparse();
        true
    }
}

fn classify_layers(bytes: &[u8]) -> PacketLayers {
    let Ok(frame) = Frame::new_checked(bytes) else {
        return PacketLayers::Malformed;
    };
    match frame.ethertype() {
        EtherType::Mmt => {
            let off = ethernet::HEADER_LEN;
            if CoreHeader::new_checked(&bytes[off..]).is_ok() {
                PacketLayers::EthernetMmt { mmt_offset: off }
            } else {
                PacketLayers::Malformed
            }
        }
        EtherType::Ipv4 => {
            let ip_off = ethernet::HEADER_LEN;
            let Ok(ip) = Ipv4Packet::new_checked(&bytes[ip_off..]) else {
                return PacketLayers::Malformed;
            };
            if ip.protocol() == Protocol::Mmt {
                let mmt_off = ip_off + ip.header_len();
                if CoreHeader::new_checked(&bytes[mmt_off..]).is_ok() {
                    PacketLayers::EthernetIpv4Mmt {
                        ip_offset: ip_off,
                        mmt_offset: mmt_off,
                    }
                } else {
                    PacketLayers::Malformed
                }
            } else if ip.protocol() == Protocol::Udp {
                // MMT-over-UDP tunnel?
                let udp_off = ip_off + ip.header_len();
                match mmt_wire::udp::Datagram::new_checked(&bytes[udp_off..]) {
                    Ok(udp) if udp.dst_port() == mmt_wire::udp::MMT_TUNNEL_PORT => {
                        let mmt_off = udp_off + mmt_wire::udp::HEADER_LEN;
                        if CoreHeader::new_checked(&bytes[mmt_off..]).is_ok() {
                            PacketLayers::EthernetIpv4UdpMmt {
                                ip_offset: ip_off,
                                udp_offset: udp_off,
                                mmt_offset: mmt_off,
                            }
                        } else {
                            PacketLayers::Malformed
                        }
                    }
                    _ => PacketLayers::EthernetIpv4,
                }
            } else {
                PacketLayers::EthernetIpv4
            }
        }
        EtherType::Unknown(_) => PacketLayers::EthernetOnly,
    }
}

/// Build an Ethernet+MMT frame (DAQ-network framing).
pub fn build_eth_mmt_frame(
    src: mmt_wire::EthernetAddress,
    dst: mmt_wire::EthernetAddress,
    mmt: &MmtRepr,
    payload: &[u8],
) -> Vec<u8> {
    let eth = mmt_wire::ethernet::EthernetRepr {
        dst,
        src,
        ethertype: EtherType::Mmt,
    };
    let inner = mmt.emit_with_payload(payload);
    mmt_wire::ethernet::build_frame(&eth, &inner)
}

/// Build an Ethernet+IPv4+MMT frame (WAN framing).
pub fn build_ip_mmt_frame(
    eth_src: mmt_wire::EthernetAddress,
    eth_dst: mmt_wire::EthernetAddress,
    ip_src: mmt_wire::Ipv4Address,
    ip_dst: mmt_wire::Ipv4Address,
    mmt: &MmtRepr,
    payload: &[u8],
) -> Vec<u8> {
    let inner = mmt.emit_with_payload(payload);
    let ip = ipv4::Ipv4Repr {
        src: ip_src,
        dst: ip_dst,
        protocol: Protocol::Mmt,
        payload_len: inner.len(),
        ttl: 64,
        dscp: 0,
    };
    let mut ip_pkt = vec![0u8; ip.total_len()];
    ip.emit(&mut ip_pkt).expect("sized above"); // mmt-lint: allow(P1, "buffer sized with total_len one line above")
    ip_pkt[ipv4::HEADER_LEN..].copy_from_slice(&inner);
    let eth = mmt_wire::ethernet::EthernetRepr {
        dst: eth_dst,
        src: eth_src,
        ethertype: EtherType::Ipv4,
    };
    mmt_wire::ethernet::build_frame(&eth, &ip_pkt)
}

/// Build an Ethernet+IPv4+UDP-tunnel+MMT frame (for networks that drop
/// unknown IP protocols; the tunnel uses
/// [`mmt_wire::udp::MMT_TUNNEL_PORT`]).
pub fn build_udp_tunnel_frame(
    eth_src: mmt_wire::EthernetAddress,
    eth_dst: mmt_wire::EthernetAddress,
    ip_src: mmt_wire::Ipv4Address,
    ip_dst: mmt_wire::Ipv4Address,
    mmt: &MmtRepr,
    payload: &[u8],
) -> Vec<u8> {
    let inner = mmt.emit_with_payload(payload);
    let udp = mmt_wire::udp::UdpRepr {
        src_port: mmt_wire::udp::MMT_TUNNEL_PORT,
        dst_port: mmt_wire::udp::MMT_TUNNEL_PORT,
        payload_len: inner.len(),
    };
    let mut udp_pkt = vec![0u8; udp.total_len()];
    udp.emit(&mut udp_pkt).expect("sized above"); // mmt-lint: allow(P1, "buffer sized with total_len one line above")
    udp_pkt[mmt_wire::udp::HEADER_LEN..].copy_from_slice(&inner);
    let ip = ipv4::Ipv4Repr {
        src: ip_src,
        dst: ip_dst,
        protocol: Protocol::Udp,
        payload_len: udp_pkt.len(),
        ttl: 64,
        dscp: 0,
    };
    let mut ip_pkt = vec![0u8; ip.total_len()];
    ip.emit(&mut ip_pkt).expect("sized above"); // mmt-lint: allow(P1, "buffer sized with total_len one line above")
    ip_pkt[ipv4::HEADER_LEN..].copy_from_slice(&udp_pkt);
    let eth = mmt_wire::ethernet::EthernetRepr {
        dst: eth_dst,
        src: eth_src,
        ethertype: EtherType::Ipv4,
    };
    mmt_wire::ethernet::build_frame(&eth, &ip_pkt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_wire::mmt::{ExperimentId, Features};
    use mmt_wire::{EthernetAddress, Ipv4Address};

    fn macs() -> (EthernetAddress, EthernetAddress) {
        (
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
        )
    }

    #[test]
    fn parses_eth_mmt() {
        let (s, d) = macs();
        let mmt = MmtRepr::data(ExperimentId::new(2, 0));
        let frame = build_eth_mmt_frame(s, d, &mmt, b"payload");
        let p = ParsedPacket::parse(frame, 0);
        assert_eq!(
            p.layers,
            PacketLayers::EthernetMmt {
                mmt_offset: ethernet::HEADER_LEN
            }
        );
        assert_eq!(p.mmt_repr().unwrap().experiment, ExperimentId::new(2, 0));
        assert_eq!(p.mmt().unwrap().payload(), b"payload");
    }

    #[test]
    fn parses_eth_ipv4_mmt() {
        let (s, d) = macs();
        let mmt = MmtRepr::data(ExperimentId::new(2, 0)).with_sequence(9);
        let frame = build_ip_mmt_frame(
            s,
            d,
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            &mmt,
            b"xyz",
        );
        let p = ParsedPacket::parse(frame, 3);
        assert!(matches!(p.layers, PacketLayers::EthernetIpv4Mmt { .. }));
        assert_eq!(p.ingress_port, 3);
        assert_eq!(p.mmt_repr().unwrap().sequence(), Some(9));
    }

    #[test]
    fn non_mmt_traffic_classified() {
        let (s, d) = macs();
        // Unknown ethertype.
        let eth = mmt_wire::ethernet::EthernetRepr {
            dst: d,
            src: s,
            ethertype: EtherType::Unknown(0x86DD),
        };
        let frame = mmt_wire::ethernet::build_frame(&eth, &[0u8; 40]);
        assert_eq!(
            ParsedPacket::parse(frame, 0).layers,
            PacketLayers::EthernetOnly
        );
        // IPv4 but UDP payload.
        let ip = ipv4::Ipv4Repr {
            src: Ipv4Address::new(1, 1, 1, 1),
            dst: Ipv4Address::new(2, 2, 2, 2),
            protocol: Protocol::Udp,
            payload_len: 8,
            ttl: 64,
            dscp: 0,
        };
        let mut ip_pkt = vec![0u8; ip.total_len()];
        ip.emit(&mut ip_pkt).unwrap();
        let eth = mmt_wire::ethernet::EthernetRepr {
            dst: d,
            src: s,
            ethertype: EtherType::Ipv4,
        };
        let frame = mmt_wire::ethernet::build_frame(&eth, &ip_pkt);
        assert_eq!(
            ParsedPacket::parse(frame, 0).layers,
            PacketLayers::EthernetIpv4
        );
    }

    #[test]
    fn malformed_frames_classified() {
        assert_eq!(
            ParsedPacket::parse(vec![0u8; 5], 0).layers,
            PacketLayers::Malformed
        );
        // MMT ethertype but truncated MMT header.
        let (s, d) = macs();
        let eth = mmt_wire::ethernet::EthernetRepr {
            dst: d,
            src: s,
            ethertype: EtherType::Mmt,
        };
        let frame = mmt_wire::ethernet::build_frame(&eth, &[0u8; 4]);
        assert_eq!(
            ParsedPacket::parse(frame, 0).layers,
            PacketLayers::Malformed
        );
    }

    #[test]
    fn rewrite_mmt_grows_header_and_fixes_ip() {
        let (s, d) = macs();
        let mmt = MmtRepr::data(ExperimentId::new(2, 0));
        let frame = build_ip_mmt_frame(
            s,
            d,
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            &mmt,
            b"record",
        );
        let mut p = ParsedPacket::parse(frame, 0);
        let upgraded = p
            .mmt_repr()
            .unwrap()
            .with_sequence(1)
            .with_age(0, false)
            .with_flags(Features::ACK_NAK);
        assert!(p.rewrite_mmt(&upgraded));
        // Frame reparses cleanly with the new header.
        let repr = p.mmt_repr().unwrap();
        assert_eq!(repr.sequence(), Some(1));
        assert!(repr.features.contains(Features::ACK_NAK));
        assert_eq!(p.mmt().unwrap().payload(), b"record");
        // Outer IPv4 is still checksum-valid with the right length.
        let ip_off = p.layers.ip_offset().unwrap();
        let ip = Ipv4Packet::new_checked(&p.bytes[ip_off..]).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip_off + ip.total_len() as usize, p.bytes.len());
    }

    #[test]
    fn rewrite_mmt_shrinks_header() {
        let (s, d) = macs();
        let mmt = MmtRepr::data(ExperimentId::new(2, 0))
            .with_sequence(5)
            .with_age(100, false);
        let frame = build_eth_mmt_frame(s, d, &mmt, b"abc");
        let mut p = ParsedPacket::parse(frame, 0);
        let before = p.bytes.len();
        let downgraded = p.mmt_repr().unwrap().without(Features::AGE);
        assert!(p.rewrite_mmt(&downgraded));
        assert_eq!(p.bytes.len(), before - 8);
        assert_eq!(p.mmt().unwrap().payload(), b"abc");
    }

    #[test]
    fn parses_udp_tunnel_and_rewrites_through_it() {
        let (s, d) = macs();
        let mmt = MmtRepr::data(ExperimentId::new(2, 0));
        let frame = build_udp_tunnel_frame(
            s,
            d,
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            &mmt,
            b"tunnelled",
        );
        let mut p = ParsedPacket::parse(frame, 0);
        assert!(matches!(p.layers, PacketLayers::EthernetIpv4UdpMmt { .. }));
        assert!(p.layers.udp_offset().is_some());
        assert_eq!(p.mmt().unwrap().payload(), b"tunnelled");
        // A mode upgrade through the tunnel keeps both outer headers sane.
        let up = p.mmt_repr().unwrap().with_sequence(3).with_age(1, false);
        assert!(p.rewrite_mmt(&up));
        assert!(matches!(p.layers, PacketLayers::EthernetIpv4UdpMmt { .. }));
        assert_eq!(p.mmt_repr().unwrap().sequence(), Some(3));
        assert_eq!(p.mmt().unwrap().payload(), b"tunnelled");
        let ip_off = p.layers.ip_offset().unwrap();
        let ip = Ipv4Packet::new_checked(&p.bytes[ip_off..]).unwrap();
        assert!(ip.verify_checksum());
        let udp_off = p.layers.udp_offset().unwrap();
        let udp = mmt_wire::udp::Datagram::new_checked(&p.bytes[udp_off..]).unwrap();
        assert_eq!(udp_off + udp.len() as usize, p.bytes.len());
    }

    #[test]
    fn udp_on_other_ports_is_not_mmt() {
        let (s, d) = macs();
        let ip = ipv4::Ipv4Repr {
            src: Ipv4Address::new(1, 1, 1, 1),
            dst: Ipv4Address::new(2, 2, 2, 2),
            protocol: Protocol::Udp,
            payload_len: 16,
            ttl: 64,
            dscp: 0,
        };
        let mut ip_pkt = vec![0u8; ip.total_len()];
        ip.emit(&mut ip_pkt).unwrap();
        let udp = mmt_wire::udp::UdpRepr {
            src_port: 1234,
            dst_port: 5678,
            payload_len: 8,
        };
        udp.emit(&mut ip_pkt[ipv4::HEADER_LEN..]).unwrap();
        let eth = mmt_wire::ethernet::EthernetRepr {
            dst: d,
            src: s,
            ethertype: EtherType::Ipv4,
        };
        let frame = mmt_wire::ethernet::build_frame(&eth, &ip_pkt);
        assert_eq!(
            ParsedPacket::parse(frame, 0).layers,
            PacketLayers::EthernetIpv4
        );
    }

    #[test]
    fn rewrite_fails_without_mmt() {
        let mut p = ParsedPacket::parse(vec![0u8; 20], 0);
        assert!(!p.rewrite_mmt(&MmtRepr::data(ExperimentId::new(1, 0))));
    }
}
