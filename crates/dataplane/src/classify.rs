//! MMT-aware queue classifiers.
//!
//! These functions plug into [`mmt_netsim::TransmitQueue`] so link queues
//! can implement the paper's age-aware behaviour: "we can prioritize the
//! processing of age-sensitive data as it travels away from ①" (§5.3) and
//! the deadline-aware AQM of Fig. 2 ("age sensitivity").

use crate::parser::ParsedPacket;
use mmt_netsim::Packet;

/// Classifier for [`mmt_netsim::QueueSpec::DeadlineAware`] queues: returns
/// 255 ("shed first") for packets whose MMT aged flag is set, 0 otherwise.
pub fn aged_shed_classifier(pkt: &Packet) -> u8 {
    let parsed = ParsedPacket::parse(pkt.bytes.clone(), 0);
    match parsed.mmt_repr().and_then(|r| r.age()) {
        Some(age) if age.aged => 255,
        _ => 0,
    }
}

/// Classifier for [`mmt_netsim::QueueSpec::StrictPriority`] queues: maps
/// the MMT priority class to a band (clamped to the available bands);
/// non-MMT and unprioritized traffic rides in band 0.
pub fn priority_class_classifier(pkt: &Packet) -> u8 {
    let parsed = ParsedPacket::parse(pkt.bytes.clone(), 0);
    parsed
        .mmt_repr()
        .and_then(|r| r.priority_class())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::build_eth_mmt_frame;
    use mmt_wire::mmt::{ExperimentId, MmtRepr};
    use mmt_wire::EthernetAddress;

    fn frame(repr: &MmtRepr) -> Packet {
        Packet::new(build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            repr,
            b"x",
        ))
    }

    #[test]
    fn aged_classification() {
        let fresh = frame(&MmtRepr::data(ExperimentId::new(1, 0)).with_age(100, false));
        let aged = frame(&MmtRepr::data(ExperimentId::new(1, 0)).with_age(100, true));
        let no_age = frame(&MmtRepr::data(ExperimentId::new(1, 0)));
        assert_eq!(aged_shed_classifier(&fresh), 0);
        assert_eq!(aged_shed_classifier(&aged), 255);
        assert_eq!(aged_shed_classifier(&no_age), 0);
        assert_eq!(aged_shed_classifier(&Packet::new(vec![0; 4])), 0);
    }

    #[test]
    fn priority_classification() {
        let prio = frame(&MmtRepr::data(ExperimentId::new(1, 0)).with_priority(3));
        let plain = frame(&MmtRepr::data(ExperimentId::new(1, 0)));
        assert_eq!(priority_class_classifier(&prio), 3);
        assert_eq!(priority_class_classifier(&plain), 0);
        assert_eq!(priority_class_classifier(&Packet::new(vec![0; 4])), 0);
    }
}
