//! The programmable element as a simulated network node.

use crate::action::Intrinsics;
use crate::parser::ParsedPacket;
use crate::pipeline::Pipeline;
use mmt_netsim::{Context, Node, Packet, PacketMeta, PortId, Time, TimerToken};
use std::collections::BTreeMap;

/// Counters exposed by a [`DataplaneElement`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElementStats {
    /// Frames handed to the pipeline.
    pub processed: u64,
    /// Frames forwarded out an egress port.
    pub forwarded: u64,
    /// Frames dropped by pipeline actions.
    pub dropped: u64,
    /// Duplicate copies created by mirror actions.
    pub mirrored: u64,
    /// Control packets (NAK/deadline/backpressure) generated.
    pub controls_emitted: u64,
    /// Frames that failed to parse.
    pub malformed: u64,
}

/// A P4-style programmable switch/NIC: wraps a [`Pipeline`] as a
/// [`mmt_netsim::Node`], applying the pipeline's fixed processing latency
/// to every forwarded frame.
pub struct DataplaneElement {
    pipeline: Pipeline,
    stats: ElementStats,
    /// Packets waiting out the processing latency, keyed by timer token.
    pending: BTreeMap<TimerToken, Vec<(PortId, Packet)>>,
    next_token: TimerToken,
}

impl DataplaneElement {
    /// Wrap a pipeline.
    pub fn new(pipeline: Pipeline) -> DataplaneElement {
        DataplaneElement {
            pipeline,
            stats: ElementStats::default(),
            pending: BTreeMap::new(),
            next_token: 1,
        }
    }

    /// The element's counters.
    pub fn stats(&self) -> &ElementStats {
        &self.stats
    }

    /// The wrapped pipeline (registers, tables).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable pipeline access (control-plane reconfiguration).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// Export the element's counters (and its pipeline's per-table
    /// hit/miss counters) into a metric registry. `element` becomes the
    /// `element` label on every series.
    pub fn export_metrics(&self, element: &str, reg: &mut mmt_telemetry::MetricRegistry) {
        let labels = [("element", element)];
        for (name, help, value) in [
            (
                "mmt_element_processed_total",
                "Frames handed to the pipeline.",
                self.stats.processed,
            ),
            (
                "mmt_element_forwarded_total",
                "Frames forwarded out an egress port.",
                self.stats.forwarded,
            ),
            (
                "mmt_element_dropped_total",
                "Frames dropped by pipeline actions.",
                self.stats.dropped,
            ),
            (
                "mmt_element_mirrored_total",
                "Duplicate copies created by mirror actions.",
                self.stats.mirrored,
            ),
            (
                "mmt_element_controls_emitted_total",
                "Control packets (NAK/deadline/backpressure) generated.",
                self.stats.controls_emitted,
            ),
            (
                "mmt_element_malformed_total",
                "Frames that failed to parse.",
                self.stats.malformed,
            ),
        ] {
            reg.describe(name, help);
            reg.counter_add(name, &labels, value);
        }
        self.pipeline.export_metrics(element, reg);
    }

    fn dispatch(&mut self, ctx: &mut Context<'_>, sends: Vec<(PortId, Packet)>) {
        let latency = Time::from_nanos(self.pipeline.latency_ns);
        if latency == Time::ZERO {
            for (port, pkt) in sends {
                ctx.send(port, pkt);
            }
        } else {
            let token = self.next_token;
            self.next_token += 1;
            self.pending.insert(token, sends);
            ctx.set_timer(latency, token);
        }
    }
}

impl Node for DataplaneElement {
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
        self.stats.processed += 1;
        let mut meta = pkt.meta;
        let mut parsed = ParsedPacket::parse(pkt.bytes, port);
        if parsed.layers == crate::parser::PacketLayers::Malformed {
            self.stats.malformed += 1;
            return;
        }
        let intr = Intrinsics {
            now_ns: ctx.now().as_nanos(),
            created_at_ns: meta.created_at.as_nanos(),
        };
        let disp = self.pipeline.process(&mut parsed, intr);
        // Mirror the (possibly just-stamped) MMT sequence and config id
        // into the simulator metadata so downstream trace events correlate
        // to the flow without re-parsing at every hop.
        if let Some(hdr) = parsed.mmt() {
            meta.seq = hdr.sequence();
            meta.config = Some(u64::from(hdr.config_id()));
        }
        let mut sends: Vec<(PortId, Packet)> = Vec::new();
        if let Some(egress) = disp.egress {
            self.stats.forwarded += 1;
            sends.push((
                egress,
                Packet {
                    bytes: parsed.bytes,
                    meta,
                },
            ));
        } else if disp.dropped {
            self.stats.dropped += 1;
        }
        for (eport, bytes) in disp.emitted {
            // Mirror copies keep the original creation time/flow/identity;
            // control messages are fresh packets born now.
            let is_mirror = disp.mirrors.contains(&eport);
            if is_mirror {
                self.stats.mirrored += 1;
            } else {
                self.stats.controls_emitted += 1;
            }
            let pmeta = if is_mirror {
                PacketMeta { id: 0, ..meta }
            } else {
                // Fresh control-plane message (deadline notification etc.);
                // flag it so fault injection can target control loss.
                PacketMeta {
                    control: true,
                    ..PacketMeta::default()
                }
            };
            sends.push((eport, Packet { bytes, meta: pmeta }));
        }
        if !sends.is_empty() {
            self.dispatch(ctx, sends);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        if let Some(sends) = self.pending.remove(&token) {
            for (port, pkt) in sends {
                ctx.send(port, pkt);
            }
        }
    }

    fn on_crash(&mut self) {
        // Frames waiting out the processing latency live in switch SRAM;
        // a power loss destroys them. Their latency timers will fire after
        // restart and find nothing to send.
        self.pending.clear();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ModeUpgrade};
    use crate::parser::build_eth_mmt_frame;
    use crate::pipeline::PipelineBuilder;
    use crate::table::{FieldValue, MatchField, Table, TableEntry};
    use mmt_netsim::{Bandwidth, LinkSpec, NodeId, Simulator};
    use mmt_wire::mmt::{ExperimentId, MmtRepr};
    use mmt_wire::EthernetAddress;

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn mmt_frame() -> Vec<u8> {
        build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &MmtRepr::data(ExperimentId::new(2, 0)),
            b"record",
        )
    }

    fn forwarding_pipeline(latency_ns: u64) -> Pipeline {
        let route = Table::new("route", vec![MatchField::IsMmt])
            .with_default(vec![Action::Forward { port: 1 }]);
        PipelineBuilder::new()
            .table(route)
            .latency_ns(latency_ns)
            .build()
    }

    fn two_node_setup(pipeline: Pipeline) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        let sw = sim.add_node("sw", Box::new(DataplaneElement::new(pipeline)));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(
            sw,
            1,
            dst,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
        );
        (sim, sw, dst)
    }

    #[test]
    fn forwards_with_processing_latency() {
        let (mut sim, sw, dst) = two_node_setup(forwarding_pipeline(500));
        sim.inject(Time::ZERO, sw, 0, Packet::new(mmt_frame()));
        sim.run();
        let got = sim.local_deliveries(dst);
        assert_eq!(got.len(), 1);
        let frame_len = mmt_frame().len();
        let expected = Time::from_nanos(500) + Bandwidth::gbps(100).tx_time(frame_len);
        assert_eq!(got[0].0, expected);
        let stats = *sim.node_as::<DataplaneElement>(sw).unwrap().stats();
        assert_eq!(stats.processed, 1);
        assert_eq!(stats.forwarded, 1);
    }

    #[test]
    fn zero_latency_forwarding() {
        let (mut sim, sw, dst) = two_node_setup(forwarding_pipeline(0));
        sim.inject(Time::ZERO, sw, 0, Packet::new(mmt_frame()));
        sim.run();
        assert_eq!(sim.local_deliveries(dst).len(), 1);
    }

    #[test]
    fn malformed_frames_counted_and_dropped() {
        let (mut sim, sw, dst) = two_node_setup(forwarding_pipeline(0));
        sim.inject(Time::ZERO, sw, 0, Packet::new(vec![1, 2, 3]));
        sim.run();
        assert!(sim.local_deliveries(dst).is_empty());
        let stats = *sim.node_as::<DataplaneElement>(sw).unwrap().stats();
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.forwarded, 0);
    }

    #[test]
    fn pipeline_drop_counted() {
        let mut acl = Table::new("acl", vec![MatchField::MmtExperiment]);
        acl.insert(TableEntry {
            key: vec![FieldValue::Exact(2)],
            priority: 0,
            actions: vec![Action::Drop],
        });
        let pl = PipelineBuilder::new().table(acl).build();
        let (mut sim, sw, dst) = two_node_setup(pl);
        sim.inject(Time::ZERO, sw, 0, Packet::new(mmt_frame()));
        sim.run();
        assert!(sim.local_deliveries(dst).is_empty());
        let stats = *sim.node_as::<DataplaneElement>(sw).unwrap().stats();
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn upgrade_happens_in_flight() {
        let mut upgrade = Table::new("upgrade", vec![MatchField::IsMmt]);
        upgrade.insert(TableEntry {
            key: vec![FieldValue::Exact(1)],
            priority: 0,
            actions: vec![
                Action::Upgrade(ModeUpgrade {
                    sequence_from_register: Some(0),
                    init_age: true,
                    ..ModeUpgrade::none()
                }),
                Action::Forward { port: 1 },
            ],
        });
        let pl = PipelineBuilder::new().table(upgrade).registers(1).build();
        let (mut sim, sw, dst) = two_node_setup(pl);
        sim.inject(Time::from_micros(3), sw, 0, Packet::new(mmt_frame()));
        sim.run();
        let got = sim.local_deliveries(dst);
        assert_eq!(got.len(), 1);
        let parsed = ParsedPacket::parse(got[0].1.bytes.clone(), 0);
        let repr = parsed.mmt_repr().unwrap();
        assert_eq!(repr.sequence(), Some(0));
        // Age initialized to now − created = 0 at the moment of processing.
        assert_eq!(repr.age().unwrap().age_ns, 0);
    }

    #[test]
    fn mirror_duplicates_to_second_port() {
        let mut dup = Table::new("dup", vec![MatchField::IsMmt]);
        dup.insert(TableEntry {
            key: vec![FieldValue::Exact(1)],
            priority: 0,
            actions: vec![Action::Mirror { port: 2 }, Action::Forward { port: 1 }],
        });
        let pl = PipelineBuilder::new().table(dup).build();
        let mut sim = Simulator::new(1);
        let sw = sim.add_node("sw", Box::new(DataplaneElement::new(pl)));
        let d1 = sim.add_node("d1", Box::new(Sink));
        let d2 = sim.add_node("d2", Box::new(Sink));
        let spec = LinkSpec::new(Bandwidth::gbps(100), Time::ZERO);
        sim.add_oneway(sw, 1, d1, 0, spec);
        sim.add_oneway(sw, 2, d2, 0, spec);
        sim.inject(Time::ZERO, sw, 0, Packet::new(mmt_frame()));
        sim.run();
        assert_eq!(sim.local_deliveries(d1).len(), 1);
        assert_eq!(sim.local_deliveries(d2).len(), 1);
        let stats = *sim.node_as::<DataplaneElement>(sw).unwrap().stats();
        assert_eq!(stats.mirrored, 1);
        // The copy carries DUPLICATED; the original does not.
        let orig = ParsedPacket::parse(sim.local_deliveries(d1)[0].1.bytes.clone(), 0);
        let copy = ParsedPacket::parse(sim.local_deliveries(d2)[0].1.bytes.clone(), 0);
        use mmt_wire::mmt::Features;
        assert!(!orig
            .mmt_repr()
            .unwrap()
            .features
            .contains(Features::DUPLICATED));
        assert!(copy
            .mmt_repr()
            .unwrap()
            .features
            .contains(Features::DUPLICATED));
    }
}
