//! Match tables: the P4 `table` abstraction over MMT-relevant header
//! fields.

use crate::action::Action;
use crate::parser::{PacketLayers, ParsedPacket};

/// Header fields a table can match on. The set is intentionally small —
/// exactly what the paper's programs need — mirroring how a P4 program
/// declares its keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchField {
    /// The port the frame arrived on.
    IngressPort,
    /// The frame's EtherType.
    EtherType,
    /// Whether the frame carries MMT at all (1) or not (0).
    IsMmt,
    /// The MMT config id (data vs control profile).
    MmtConfigId,
    /// The raw 24-bit MMT configuration data (feature bits / control type).
    MmtConfigData,
    /// The 24-bit experiment number.
    MmtExperiment,
    /// The 8-bit instrument slice.
    MmtSlice,
    /// The MMT aged flag (0/1), if the AGE extension is present (else 0).
    MmtAged,
    /// Outer IPv4 destination address (0 when not IP).
    Ipv4Dst,
}

/// Extract a field's value from a parsed packet.
pub fn extract(field: MatchField, pkt: &ParsedPacket) -> u64 {
    match field {
        MatchField::IngressPort => pkt.ingress_port as u64,
        MatchField::EtherType => mmt_wire::ethernet::Frame::new_checked(&pkt.bytes[..])
            .map(|f| u64::from(f.ethertype().as_u16()))
            .unwrap_or(0),
        MatchField::IsMmt => u64::from(pkt.layers.mmt_offset().is_some()),
        MatchField::MmtConfigId => pkt.mmt().map(|h| u64::from(h.config_id())).unwrap_or(0),
        MatchField::MmtConfigData => pkt.mmt().map(|h| u64::from(h.config_data())).unwrap_or(0),
        MatchField::MmtExperiment => pkt
            .mmt()
            .map(|h| u64::from(h.experiment().experiment()))
            .unwrap_or(0),
        MatchField::MmtSlice => pkt
            .mmt()
            .map(|h| u64::from(h.experiment().slice()))
            .unwrap_or(0),
        MatchField::MmtAged => pkt
            .mmt()
            .and_then(|h| h.age())
            .map(|a| u64::from(a.aged))
            .unwrap_or(0),
        MatchField::Ipv4Dst => match pkt.layers {
            PacketLayers::EthernetIpv4Mmt { ip_offset, .. } => {
                mmt_wire::ipv4::Packet::new_checked(&pkt.bytes[ip_offset..])
                    .map(|ip| u64::from(ip.dst_addr().to_u32()))
                    .unwrap_or(0)
            }
            _ => 0,
        },
    }
}

/// How a field is matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Value must equal the key exactly.
    Exact,
    /// `(value & mask) == (key & mask)`.
    Ternary,
    /// Longest-prefix match on the top `prefix_len` bits of a 32-bit value.
    Lpm,
}

/// One field's match criterion in a table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldValue {
    /// Match exactly this value.
    Exact(u64),
    /// Ternary: value and mask.
    Ternary {
        /// The value to compare (after masking).
        value: u64,
        /// Bits that participate in the comparison.
        mask: u64,
    },
    /// Prefix match on a 32-bit value.
    Prefix {
        /// The prefix value (high bits significant).
        value: u32,
        /// Prefix length in bits (0–32).
        len: u8,
    },
    /// Wildcard: always matches.
    Any,
}

impl FieldValue {
    /// Does `observed` satisfy this criterion?
    pub fn matches(&self, observed: u64) -> bool {
        match *self {
            FieldValue::Exact(v) => observed == v,
            FieldValue::Ternary { value, mask } => observed & mask == value & mask,
            FieldValue::Prefix { value, len } => {
                let len = len.min(32);
                if len == 0 {
                    return true;
                }
                let mask = (!0u32) << (32 - u32::from(len));
                (observed as u32) & mask == value & mask
            }
            FieldValue::Any => true,
        }
    }

    /// The specificity used for priority ordering (longer prefixes win).
    fn specificity(&self) -> u32 {
        match *self {
            FieldValue::Exact(_) => 64,
            FieldValue::Ternary { mask, .. } => mask.count_ones(),
            FieldValue::Prefix { len, .. } => u32::from(len),
            FieldValue::Any => 0,
        }
    }
}

/// A key: one criterion per declared field, in table-key order.
pub type Key = Vec<FieldValue>;

/// One table entry: criteria plus the actions to run on match.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// Per-field criteria (must have the table's key arity).
    pub key: Key,
    /// Explicit priority; higher wins. Ties break by specificity, then
    /// insertion order (earlier wins).
    pub priority: i32,
    /// Actions executed on match, in order.
    pub actions: Vec<Action>,
}

/// A match-action table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Name, for diagnostics and resource reports.
    pub name: String,
    /// The fields this table matches on, in key order.
    pub key_fields: Vec<MatchField>,
    entries: Vec<TableEntry>,
    /// Actions to run when nothing matches (P4 default action).
    pub default_actions: Vec<Action>,
    /// Hit counter.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: &str, key_fields: Vec<MatchField>) -> Table {
        Table {
            name: name.to_string(),
            key_fields,
            entries: Vec::new(),
            default_actions: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Set the default (miss) actions.
    #[must_use]
    pub fn with_default(mut self, actions: Vec<Action>) -> Table {
        self.default_actions = actions;
        self
    }

    /// Insert an entry.
    ///
    /// # Panics
    /// Panics if the entry's key arity differs from the table's.
    pub fn insert(&mut self, entry: TableEntry) {
        assert_eq!(
            entry.key.len(),
            self.key_fields.len(),
            "key arity mismatch in table {}",
            self.name
        );
        self.entries.push(entry);
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mutable access to the installed entries — the control-plane
    /// modify-entry path (P4Runtime `MODIFY`): rewrite action parameters
    /// in place so in-flight traffic picks up the new mode.
    pub fn entries_mut(&mut self) -> &mut [TableEntry] {
        &mut self.entries
    }

    /// Look up the packet; returns the matching actions (entry or default)
    /// and records hit/miss counters.
    pub fn lookup(&mut self, pkt: &ParsedPacket) -> &[Action] {
        let observed: Vec<u64> = self.key_fields.iter().map(|&f| extract(f, pkt)).collect();
        let mut best: Option<(i32, u32, usize)> = None;
        for (idx, entry) in self.entries.iter().enumerate() {
            let matches = entry
                .key
                .iter()
                .zip(&observed)
                .all(|(criterion, &obs)| criterion.matches(obs));
            if !matches {
                continue;
            }
            let spec: u32 = entry.key.iter().map(FieldValue::specificity).sum();
            let candidate = (entry.priority, spec, usize::MAX - idx);
            if best.is_none_or(|b| candidate > (b.0, b.1, b.2)) {
                best = Some(candidate);
            }
        }
        match best {
            Some((_, _, inv_idx)) => {
                self.hits += 1;
                &self.entries[usize::MAX - inv_idx].actions
            }
            None => {
                self.misses += 1;
                &self.default_actions
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::build_eth_mmt_frame;
    use mmt_wire::mmt::{ExperimentId, MmtRepr};
    use mmt_wire::EthernetAddress;

    fn mmt_pkt(experiment: u32, slice: u8, port: usize) -> ParsedPacket {
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &MmtRepr::data(ExperimentId::new(experiment, slice)),
            b"x",
        );
        ParsedPacket::parse(frame, port)
    }

    #[test]
    fn field_extraction() {
        let p = mmt_pkt(7, 3, 5);
        assert_eq!(extract(MatchField::IngressPort, &p), 5);
        assert_eq!(extract(MatchField::EtherType, &p), 0x88B5);
        assert_eq!(extract(MatchField::IsMmt, &p), 1);
        assert_eq!(extract(MatchField::MmtConfigId, &p), 0);
        assert_eq!(extract(MatchField::MmtExperiment, &p), 7);
        assert_eq!(extract(MatchField::MmtSlice, &p), 3);
        assert_eq!(extract(MatchField::MmtAged, &p), 0);
        assert_eq!(extract(MatchField::Ipv4Dst, &p), 0);
    }

    #[test]
    fn field_value_semantics() {
        assert!(FieldValue::Exact(5).matches(5));
        assert!(!FieldValue::Exact(5).matches(6));
        assert!(FieldValue::Any.matches(u64::MAX));
        let t = FieldValue::Ternary {
            value: 0b1010,
            mask: 0b1110,
        };
        assert!(t.matches(0b1011)); // low bit ignored
        assert!(!t.matches(0b0011));
        let p = FieldValue::Prefix {
            value: 0x0A000000,
            len: 8,
        }; // 10.0.0.0/8
        assert!(p.matches(u64::from(0x0A010203u32)));
        assert!(!p.matches(u64::from(0x0B010203u32)));
        assert!(FieldValue::Prefix { value: 0, len: 0 }.matches(12345));
    }

    #[test]
    fn lookup_prefers_priority_then_specificity() {
        let mut table =
            Table::new("t", vec![MatchField::MmtExperiment]).with_default(vec![Action::Drop]);
        table.insert(TableEntry {
            key: vec![FieldValue::Any],
            priority: 0,
            actions: vec![Action::Forward { port: 1 }],
        });
        table.insert(TableEntry {
            key: vec![FieldValue::Exact(7)],
            priority: 0,
            actions: vec![Action::Forward { port: 2 }],
        });
        // Exact beats Any at equal priority.
        let p = mmt_pkt(7, 0, 0);
        assert_eq!(table.lookup(&p), &[Action::Forward { port: 2 }]);
        // Non-matching experiment falls to the Any entry.
        let p = mmt_pkt(8, 0, 0);
        assert_eq!(table.lookup(&p), &[Action::Forward { port: 1 }]);
        // Higher priority overrides specificity.
        table.insert(TableEntry {
            key: vec![FieldValue::Any],
            priority: 10,
            actions: vec![Action::Forward { port: 9 }],
        });
        let p = mmt_pkt(7, 0, 0);
        assert_eq!(table.lookup(&p), &[Action::Forward { port: 9 }]);
        assert_eq!(table.hits, 3);
        assert_eq!(table.misses, 0);
    }

    #[test]
    fn default_action_on_miss() {
        let mut table =
            Table::new("t", vec![MatchField::MmtExperiment]).with_default(vec![Action::Drop]);
        table.insert(TableEntry {
            key: vec![FieldValue::Exact(1)],
            priority: 0,
            actions: vec![Action::Forward { port: 1 }],
        });
        let p = mmt_pkt(2, 0, 0);
        assert_eq!(table.lookup(&p), &[Action::Drop]);
        assert_eq!(table.misses, 1);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn insertion_order_breaks_full_ties() {
        let mut table = Table::new("t", vec![MatchField::MmtExperiment]);
        table.insert(TableEntry {
            key: vec![FieldValue::Exact(1)],
            priority: 0,
            actions: vec![Action::Forward { port: 1 }],
        });
        table.insert(TableEntry {
            key: vec![FieldValue::Exact(1)],
            priority: 0,
            actions: vec![Action::Forward { port: 2 }],
        });
        let p = mmt_pkt(1, 0, 0);
        assert_eq!(table.lookup(&p), &[Action::Forward { port: 1 }]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut table = Table::new("t", vec![MatchField::MmtExperiment, MatchField::MmtSlice]);
        table.insert(TableEntry {
            key: vec![FieldValue::Any],
            priority: 0,
            actions: vec![],
        });
    }
}
