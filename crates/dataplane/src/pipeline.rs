//! The sequential match-action pipeline with its register file.

use crate::action::{execute, Disposition, Intrinsics};
use crate::parser::ParsedPacket;
use crate::resources::ResourceUsage;
use crate::table::Table;

/// A packet-processing pipeline: tables executed in order, sharing a
/// register file. Each table's matched (or default) actions run before the
/// next table is consulted — the straight-line control flow that maps onto
/// a Tofino stage sequence.
#[derive(Debug)]
pub struct Pipeline {
    tables: Vec<Table>,
    registers: Vec<u64>,
    /// Fixed per-packet processing latency (pipeline traversal time).
    pub latency_ns: u64,
}

impl Pipeline {
    /// Run the pipeline on one packet, producing its disposition.
    pub fn process(&mut self, pkt: &mut ParsedPacket, intr: Intrinsics) -> Disposition {
        let mut disp = Disposition::default();
        for table in &mut self.tables {
            // Clone the matched action list: actions may mutate the packet,
            // which invalidates a borrow into the table.
            let actions = table.lookup(pkt).to_vec();
            for action in &actions {
                execute(action, pkt, intr, &mut self.registers, &mut disp);
                if disp.dropped {
                    return disp;
                }
            }
        }
        disp
    }

    /// Read a register (telemetry counters, sequence counters).
    pub fn register(&self, idx: usize) -> u64 {
        self.registers[idx]
    }

    /// Set a register (control-plane write).
    pub fn set_register(&mut self, idx: usize, value: u64) {
        self.registers[idx] = value;
    }

    /// The tables, for inspection.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Mutable table access (control-plane entry updates at runtime).
    pub fn table_mut(&mut self, idx: usize) -> &mut Table {
        &mut self.tables[idx]
    }

    /// Mutable table access by name (control-plane entry updates when the
    /// caller knows the program's table names, not its stage order).
    pub fn table_mut_by_name(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.iter_mut().find(|t| t.name == name)
    }

    /// Per-stage (table) lookup statistics, in execution order:
    /// `(table name, hits, misses)`.
    pub fn stage_stats(&self) -> Vec<(&str, u64, u64)> {
        self.tables
            .iter()
            .map(|t| (t.name.as_str(), t.hits, t.misses))
            .collect()
    }

    /// Export per-table hit/miss counters into a metric registry, labeled
    /// by owning `element` and `table` name.
    pub fn export_metrics(&self, element: &str, reg: &mut mmt_telemetry::MetricRegistry) {
        reg.describe(
            "mmt_table_hits_total",
            "Match-action table lookups that hit an entry.",
        );
        reg.describe(
            "mmt_table_misses_total",
            "Match-action table lookups that fell to the default action.",
        );
        for (name, hits, misses) in self.stage_stats() {
            let labels = [("element", element), ("table", name)];
            reg.counter_add("mmt_table_hits_total", &labels, hits);
            reg.counter_add("mmt_table_misses_total", &labels, misses);
        }
    }

    /// Resource usage of this pipeline (for budget checks, experiment E8).
    pub fn resource_usage(&self) -> ResourceUsage {
        ResourceUsage {
            tables: self.tables.len(),
            entries: self.tables.iter().map(Table::len).sum(),
            key_fields: self.tables.iter().map(|t| t.key_fields.len()).sum(),
            registers: self.registers.len(),
        }
    }
}

/// Builder for [`Pipeline`].
#[derive(Debug, Default)]
pub struct PipelineBuilder {
    tables: Vec<Table>,
    registers: usize,
    latency_ns: u64,
}

impl PipelineBuilder {
    /// Start an empty pipeline.
    pub fn new() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Append a table (executes after those already added).
    #[must_use]
    pub fn table(mut self, table: Table) -> PipelineBuilder {
        self.tables.push(table);
        self
    }

    /// Allocate `n` registers (all start at zero).
    #[must_use]
    pub fn registers(mut self, n: usize) -> PipelineBuilder {
        self.registers = n;
        self
    }

    /// Set the fixed per-packet processing latency.
    #[must_use]
    pub fn latency_ns(mut self, ns: u64) -> PipelineBuilder {
        self.latency_ns = ns;
        self
    }

    /// Finish.
    pub fn build(self) -> Pipeline {
        Pipeline {
            tables: self.tables,
            registers: vec![0; self.registers],
            latency_ns: self.latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ModeUpgrade};
    use crate::parser::build_eth_mmt_frame;
    use crate::table::{FieldValue, MatchField, TableEntry};
    use mmt_wire::mmt::{ExperimentId, MmtRepr};
    use mmt_wire::EthernetAddress;

    fn pkt(experiment: u32) -> ParsedPacket {
        let frame = build_eth_mmt_frame(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            EthernetAddress([2, 0, 0, 0, 0, 2]),
            &MmtRepr::data(ExperimentId::new(experiment, 0)),
            b"x",
        );
        ParsedPacket::parse(frame, 0)
    }

    fn intr() -> Intrinsics {
        Intrinsics {
            now_ns: 100,
            created_at_ns: 0,
        }
    }

    #[test]
    fn tables_execute_in_order() {
        // Table 1 upgrades (stamps a sequence), table 2 forwards.
        let mut upgrade = Table::new("upgrade", vec![MatchField::IsMmt]);
        upgrade.insert(TableEntry {
            key: vec![FieldValue::Exact(1)],
            priority: 0,
            actions: vec![Action::Upgrade(ModeUpgrade {
                sequence_from_register: Some(0),
                ..ModeUpgrade::none()
            })],
        });
        let forward = Table::new("route", vec![MatchField::IsMmt])
            .with_default(vec![Action::Forward { port: 1 }]);
        let mut pl = PipelineBuilder::new()
            .table(upgrade)
            .table(forward)
            .registers(1)
            .latency_ns(400)
            .build();
        let mut p = pkt(2);
        let d = pl.process(&mut p, intr());
        assert_eq!(d.egress, Some(1));
        assert_eq!(p.mmt_repr().unwrap().sequence(), Some(0));
        assert_eq!(pl.register(0), 1);
        assert_eq!(pl.latency_ns, 400);
        // Second packet gets the next sequence number.
        let mut p2 = pkt(2);
        pl.process(&mut p2, intr());
        assert_eq!(p2.mmt_repr().unwrap().sequence(), Some(1));
    }

    #[test]
    fn drop_short_circuits_later_tables() {
        let mut acl = Table::new("acl", vec![MatchField::MmtExperiment]);
        acl.insert(TableEntry {
            key: vec![FieldValue::Exact(9)],
            priority: 0,
            actions: vec![Action::Drop],
        });
        let count = Table::new("count", vec![MatchField::IsMmt]).with_default(vec![
            Action::Count { register: 0 },
            Action::Forward { port: 0 },
        ]);
        let mut pl = PipelineBuilder::new()
            .table(acl)
            .table(count)
            .registers(1)
            .build();
        let mut blocked = pkt(9);
        let d = pl.process(&mut blocked, intr());
        assert!(d.dropped);
        assert_eq!(pl.register(0), 0, "count table must not run after drop");
        let mut allowed = pkt(1);
        let d = pl.process(&mut allowed, intr());
        assert_eq!(d.egress, Some(0));
        assert_eq!(pl.register(0), 1);
    }

    #[test]
    fn control_plane_register_and_entry_updates() {
        let t = Table::new("t", vec![MatchField::IsMmt]);
        let mut pl = PipelineBuilder::new().table(t).registers(2).build();
        pl.set_register(1, 42);
        assert_eq!(pl.register(1), 42);
        pl.table_mut(0).insert(TableEntry {
            key: vec![FieldValue::Any],
            priority: 0,
            actions: vec![Action::Forward { port: 5 }],
        });
        let mut p = pkt(1);
        assert_eq!(pl.process(&mut p, intr()).egress, Some(5));
    }

    #[test]
    fn resource_usage_reflects_structure() {
        let mut t1 = Table::new("a", vec![MatchField::IsMmt, MatchField::MmtExperiment]);
        t1.insert(TableEntry {
            key: vec![FieldValue::Any, FieldValue::Exact(1)],
            priority: 0,
            actions: vec![],
        });
        let t2 = Table::new("b", vec![MatchField::IngressPort]);
        let pl = PipelineBuilder::new()
            .table(t1)
            .table(t2)
            .registers(3)
            .build();
        let u = pl.resource_usage();
        assert_eq!(u.tables, 2);
        assert_eq!(u.entries, 1);
        assert_eq!(u.key_fields, 3);
        assert_eq!(u.registers, 3);
        assert_eq!(pl.tables().len(), 2);
    }
}
