//! # `mmt-dataplane` — a P4-style programmable dataplane element
//!
//! The paper's pilot uses a Tofino2 switch and Alveo FPGA NICs to change a
//! stream's transport mode *in the network* (§5.3–5.4). This crate is the
//! software substitute: a match-action pipeline whose action set is
//! restricted to exactly the operations the paper relies on and that
//! P4-programmable hardware supports well — "conservative, header-based
//! processing" (§5): parse headers, match on header fields, rewrite/extend
//! headers, bump registers, mirror packets. There is deliberately no
//! payload processing and no floating point (the paper's own constraint,
//! citing Fingerhut's note \[25\]).
//!
//! ## Pieces
//!
//! * [`parser`] — fixed-function parse graph: Ethernet → (IPv4 →) MMT.
//! * [`table`] — exact/ternary/LPM match tables over header fields.
//! * [`action`] — the action set (forward, drop, mirror, MMT mode
//!   upgrade/downgrade, age update, sequence stamping, deadline check,
//!   priority mapping).
//! * [`pipeline`] — sequential table execution with a register file.
//! * [`resources`] — a Tofino2-flavoured resource budget so programs can be
//!   checked for hardware plausibility (experiment E8).
//! * [`element`] — the [`mmt_netsim::Node`] wrapper that runs the pipeline
//!   on every arriving frame, applying a fixed per-packet processing
//!   latency.
//! * [`programs`] — the canned mode-transition programs of the pilot:
//!   DAQ→WAN upgrade at the border, age update at every WAN hop, the
//!   destination timeliness check, alert duplication.
//! * [`classify`] — MMT-aware queue classifiers (aged packets shed first,
//!   priority class → strict-priority band).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod classify;
pub mod element;
pub mod parser;
pub mod pipeline;
pub mod programs;
pub mod resources;
pub mod table;

pub use action::Action;
pub use element::{DataplaneElement, ElementStats};
pub use parser::{PacketLayers, ParsedPacket};
pub use pipeline::{Pipeline, PipelineBuilder};
pub use resources::{ResourceBudget, ResourceUsage};
pub use table::{FieldValue, Key, MatchField, MatchKind, Table, TableEntry};
