//! M1 — Criterion micro-benchmarks: the software packet-processing costs.
//!
//! These measure the costs the paper argues must be small for line-rate
//! operation (Req 2): header parse/emit, the match-action pipeline per
//! packet, mode-upgrade frame surgery, detector waveform synthesis, and
//! raw simulator event throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use mmt_dataplane::action::Intrinsics;
use mmt_dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
use mmt_dataplane::programs::{self, BorderConfig};
use mmt_netsim::{Bandwidth, LinkSpec, Simulator, Time};
use mmt_wire::daq::{DuneSubHeader, SubHeader, TriggerRecord};
use mmt_wire::mmt::{CoreHeader, ExperimentId, Features, MmtRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};

fn wan_repr() -> MmtRepr {
    MmtRepr::data(ExperimentId::new(2, 0))
        .with_sequence(42)
        .with_retransmit(Ipv4Address::new(10, 0, 0, 5), 47_000)
        .with_timeliness(1_000_000, Ipv4Address::new(10, 0, 0, 9))
        .with_age(1_500, false)
        .with_flags(Features::ACK_NAK)
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Elements(1));

    let repr = wan_repr();
    let mut buf = vec![0u8; repr.header_len()];
    group.bench_function("mmt_emit_mode2", |b| {
        b.iter(|| repr.emit(std::hint::black_box(&mut buf)).unwrap())
    });
    repr.emit(&mut buf).unwrap();
    group.bench_function("mmt_parse_mode2", |b| {
        b.iter(|| MmtRepr::parse(std::hint::black_box(&buf)).unwrap())
    });
    group.bench_function("mmt_view_age_update", |b| {
        let mut frame = repr.emit_with_payload(&[0u8; 64]);
        b.iter(|| {
            let mut hdr = CoreHeader::new_unchecked(std::hint::black_box(&mut frame[..]));
            hdr.update_age(100, 1_000_000)
        })
    });

    let record = TriggerRecord {
        run: 1,
        event: 7,
        timestamp_ns: 12345,
        sub: SubHeader::Dune(DuneSubHeader {
            crate_no: 1,
            slot: 2,
            link: 3,
            first_channel: 0,
            last_channel: 63,
        }),
        payload: vec![0xAB; 12_288],
    };
    group.throughput(Throughput::Bytes(record.encoded_len() as u64));
    group.bench_function("trigger_record_encode_12k", |b| {
        b.iter(|| record.encode().unwrap())
    });
    let encoded = record.encode().unwrap();
    group.bench_function("trigger_record_decode_12k", |b| {
        b.iter(|| TriggerRecord::decode(std::hint::black_box(&encoded)).unwrap())
    });
    group.finish();
}

fn bench_dataplane(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataplane");
    group.throughput(Throughput::Elements(1));

    let border_cfg = BorderConfig {
        daq_port: 0,
        wan_port: 1,
        retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
        deadline_budget_ns: 50_000_000,
        notify_addr: Ipv4Address::new(10, 0, 0, 1),
        priority_class: None,
    };
    let sensor_frame = build_eth_mmt_frame(
        EthernetAddress([2, 0, 0, 0, 0, 1]),
        EthernetAddress([2, 0, 0, 0, 0, 2]),
        &MmtRepr::data(ExperimentId::new(2, 0)),
        &[0u8; 8192],
    );
    group.bench_function("border_upgrade_8k_frame", |b| {
        let mut pipeline = programs::daq_to_wan_border(border_cfg);
        b.iter_batched(
            || ParsedPacket::parse(sensor_frame.clone(), 0),
            |mut pkt| {
                pipeline.process(&mut pkt, Intrinsics { now_ns: 100, created_at_ns: 0 });
                pkt
            },
            BatchSize::SmallInput,
        )
    });

    let wan_frame = build_eth_mmt_frame(
        EthernetAddress([2, 0, 0, 0, 0, 1]),
        EthernetAddress([2, 0, 0, 0, 0, 2]),
        &wan_repr(),
        &[0u8; 8192],
    );
    group.bench_function("transit_age_update_8k_frame", |b| {
        let mut pipeline = programs::wan_transit(0, 1, 40_000_000);
        b.iter_batched(
            || ParsedPacket::parse(wan_frame.clone(), 0),
            |mut pkt| {
                pipeline.process(&mut pkt, Intrinsics { now_ns: 100, created_at_ns: 0 });
                pkt
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("parse_classify_only", |b| {
        b.iter(|| ParsedPacket::parse(std::hint::black_box(wan_frame.clone()), 0))
    });
    group.finish();
}

fn bench_daq(c: &mut Criterion) {
    use mmt_daq::lartpc::{pack_samples, LArTpc, LArTpcConfig};
    let mut group = c.benchmark_group("daq");

    let mut detector = LArTpc::new(LArTpcConfig::iceberg(), 1);
    group.throughput(Throughput::Elements(2048));
    group.bench_function("waveform_2048_samples", |b| {
        b.iter(|| detector.waveform(0, 2048, &[]))
    });
    let wf = detector.waveform(0, 2048, &[]);
    group.throughput(Throughput::Bytes(2048 * 2));
    group.bench_function("pack_2048_samples", |b| {
        b.iter(|| pack_samples(std::hint::black_box(&wf)))
    });
    group.finish();
}

fn bench_netsim(c: &mut Criterion) {
    use mmt_netsim::{Context, Node, Packet, PortId};
    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    struct Burst(usize);
    impl Node for Burst {
        fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.0 {
                ctx.send(0, Packet::new(vec![0u8; 1500]));
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let mut group = c.benchmark_group("netsim");
    const N: usize = 10_000;
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("sim_10k_packets_one_link", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let src = sim.add_node("src", Box::new(Burst(N)));
            let dst = sim.add_node("dst", Box::new(Sink));
            sim.add_oneway(
                src,
                0,
                dst,
                0,
                LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(1)),
            );
            sim.run();
            sim.now()
        })
    });
    group.finish();
}

fn bench_seqtrack(c: &mut Criterion) {
    use mmt_core::SeqTracker;
    let mut group = c.benchmark_group("seqtrack");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("record_10k_in_order", |b| {
        b.iter(|| {
            let mut t = SeqTracker::new();
            for s in 0..10_000u64 {
                t.record(s);
            }
            t.received_count()
        })
    });
    group.bench_function("record_10k_with_gaps", |b| {
        b.iter(|| {
            let mut t = SeqTracker::new();
            for s in (0..20_000u64).step_by(2) {
                t.record(s);
            }
            t.missing_ranges(32).len()
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_wire, bench_dataplane, bench_daq, bench_netsim, bench_seqtrack
}
criterion_main!(benches);
