//! M1 — micro-benchmarks: the software packet-processing costs.
//!
//! These measure the costs the paper argues must be small for line-rate
//! operation (Req 2): header parse/emit, the match-action pipeline per
//! packet, mode-upgrade frame surgery, detector waveform synthesis, and
//! raw simulator event throughput.
//!
//! The harness is self-contained (`harness = false`, plain `main`): each
//! benchmark auto-calibrates an iteration count to a target measurement
//! window, times it with `std::time::Instant`, and prints ns/op — no
//! external benchmarking crates.

use std::hint::black_box;
use std::time::{Duration, Instant};

use mmt_dataplane::action::Intrinsics;
use mmt_dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
use mmt_dataplane::programs::{self, BorderConfig};
use mmt_netsim::{Bandwidth, LinkSpec, Simulator, Time};
use mmt_wire::daq::{DuneSubHeader, SubHeader, TriggerRecord};
use mmt_wire::mmt::{CoreHeader, ExperimentId, Features, MmtRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};

const WARMUP: Duration = Duration::from_millis(100);
const MEASURE: Duration = Duration::from_millis(400);

/// Calibrate an iteration count for the warmup window, then time the
/// measurement window and report mean ns per call of `f`.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed() >= WARMUP || iters >= 1 << 30 {
            break;
        }
        iters *= 2;
    }
    let t = Instant::now();
    let mut done: u64 = 0;
    while t.elapsed() < MEASURE {
        for _ in 0..iters.clamp(1, 4096) {
            f();
        }
        done += iters.clamp(1, 4096);
    }
    let per = t.elapsed().as_nanos() as f64 / done as f64;
    println!("{group}/{name:<32} {per:>12.1} ns/op   ({done} iters)");
}

/// Like [`bench`] but each timed call consumes a fresh input built by
/// `setup` outside the timed region (Criterion's `iter_batched`).
fn bench_batched<T>(group: &str, name: &str, mut setup: impl FnMut() -> T, mut f: impl FnMut(T)) {
    const BATCH: usize = 128;
    let mut inputs: Vec<T> = Vec::with_capacity(BATCH);
    let mut timed = Duration::ZERO;
    let mut done: u64 = 0;
    // Warmup batch.
    inputs.extend((0..BATCH).map(|_| setup()));
    for input in inputs.drain(..) {
        f(input);
    }
    while timed < MEASURE {
        inputs.extend((0..BATCH).map(|_| setup()));
        let t = Instant::now();
        for input in inputs.drain(..) {
            f(input);
        }
        timed += t.elapsed();
        done += BATCH as u64;
    }
    let per = timed.as_nanos() as f64 / done as f64;
    println!("{group}/{name:<32} {per:>12.1} ns/op   ({done} iters)");
}

fn wan_repr() -> MmtRepr {
    MmtRepr::data(ExperimentId::new(2, 0))
        .with_sequence(42)
        .with_retransmit(Ipv4Address::new(10, 0, 0, 5), 47_000)
        .with_timeliness(1_000_000, Ipv4Address::new(10, 0, 0, 9))
        .with_age(1_500, false)
        .with_flags(Features::ACK_NAK)
}

fn bench_wire() {
    let repr = wan_repr();
    let mut buf = vec![0u8; repr.header_len()];
    bench("wire", "mmt_emit_mode2", || {
        repr.emit(black_box(&mut buf)).unwrap();
    });
    repr.emit(&mut buf).unwrap();
    bench("wire", "mmt_parse_mode2", || {
        black_box(MmtRepr::parse(black_box(&buf)).unwrap());
    });
    let mut frame = repr.emit_with_payload(&[0u8; 64]);
    bench("wire", "mmt_view_age_update", || {
        let mut hdr = CoreHeader::new_unchecked(black_box(&mut frame[..]));
        black_box(hdr.update_age(100, 1_000_000).unwrap());
    });

    let record = TriggerRecord {
        run: 1,
        event: 7,
        timestamp_ns: 12345,
        sub: SubHeader::Dune(DuneSubHeader {
            crate_no: 1,
            slot: 2,
            link: 3,
            first_channel: 0,
            last_channel: 63,
        }),
        payload: vec![0xAB; 12_288],
    };
    bench("wire", "trigger_record_encode_12k", || {
        black_box(record.encode().unwrap());
    });
    let encoded = record.encode().unwrap();
    bench("wire", "trigger_record_decode_12k", || {
        black_box(TriggerRecord::decode(black_box(&encoded)).unwrap());
    });
}

fn bench_dataplane() {
    let border_cfg = BorderConfig {
        daq_port: 0,
        wan_port: 1,
        retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
        deadline_budget_ns: 50_000_000,
        notify_addr: Ipv4Address::new(10, 0, 0, 1),
        priority_class: None,
    };
    let sensor_frame = build_eth_mmt_frame(
        EthernetAddress([2, 0, 0, 0, 0, 1]),
        EthernetAddress([2, 0, 0, 0, 0, 2]),
        &MmtRepr::data(ExperimentId::new(2, 0)),
        &[0u8; 8192],
    );
    let mut border = programs::daq_to_wan_border(border_cfg);
    bench_batched(
        "dataplane",
        "border_upgrade_8k_frame",
        || ParsedPacket::parse(sensor_frame.clone(), 0),
        |mut pkt| {
            border.process(
                &mut pkt,
                Intrinsics {
                    now_ns: 100,
                    created_at_ns: 0,
                },
            );
            black_box(pkt);
        },
    );

    let wan_frame = build_eth_mmt_frame(
        EthernetAddress([2, 0, 0, 0, 0, 1]),
        EthernetAddress([2, 0, 0, 0, 0, 2]),
        &wan_repr(),
        &[0u8; 8192],
    );
    let mut transit = programs::wan_transit(0, 1, 40_000_000);
    bench_batched(
        "dataplane",
        "transit_age_update_8k_frame",
        || ParsedPacket::parse(wan_frame.clone(), 0),
        |mut pkt| {
            transit.process(
                &mut pkt,
                Intrinsics {
                    now_ns: 100,
                    created_at_ns: 0,
                },
            );
            black_box(pkt);
        },
    );
    bench("dataplane", "parse_classify_only", || {
        black_box(ParsedPacket::parse(black_box(wan_frame.clone()), 0));
    });
}

fn bench_daq() {
    use mmt_daq::lartpc::{pack_samples, LArTpc, LArTpcConfig};
    let mut detector = LArTpc::new(LArTpcConfig::iceberg(), 1);
    bench("daq", "waveform_2048_samples", || {
        black_box(detector.waveform(0, 2048, &[]));
    });
    let mut detector = LArTpc::new(LArTpcConfig::iceberg(), 1);
    let wf = detector.waveform(0, 2048, &[]);
    bench("daq", "pack_2048_samples", || {
        black_box(pack_samples(black_box(&wf)));
    });
}

fn bench_netsim() {
    use mmt_netsim::{Context, Node, Packet, PortId};
    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    struct Burst(usize);
    impl Node for Burst {
        fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.0 {
                ctx.send(0, Packet::new(vec![0u8; 1500]));
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    const N: usize = 10_000;
    bench("netsim", "sim_10k_packets_one_link", || {
        let mut sim = Simulator::new(1);
        let src = sim.add_node("src", Box::new(Burst(N)));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(
            src,
            0,
            dst,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(1)),
        );
        sim.run();
        black_box(sim.now());
    });
}

fn bench_arena() {
    use mmt_netsim::{Packet, PacketArena};
    // Pooled alloc/release cycle vs a fresh heap Vec per packet — the
    // allocation the arena exists to eliminate.
    let mut arena = PacketArena::with_capacity(64, 1500);
    bench("arena", "pooled_packet_1500_cycle", || {
        let pkt = arena.packet(1500, 7);
        let pkt = black_box(pkt);
        arena.recycle(pkt);
    });
    bench("arena", "fresh_vec_packet_1500", || {
        black_box(Packet::new(vec![0u8; 1500]));
    });
    let mut arena = PacketArena::with_capacity(64, 1500);
    bench("arena", "slot_alloc_release_1500", || {
        let r = arena.alloc(1500);
        black_box(arena.get(r));
        arena.release(r);
    });
}

fn bench_stats() {
    use mmt_netsim::stats::{quantile_sorted, quantiles_sorted};
    let mut rng = mmt_netsim::SimRng::new(7);
    let samples: Vec<u64> = (0..100_000).map(|_| rng.next_bounded(1 << 30)).collect();
    const QS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];
    // The old shape: every quantile query clones and re-sorts the samples.
    bench("stats", "quantiles_resort_per_call", || {
        for q in QS {
            let mut copy = samples.clone();
            copy.sort_unstable();
            black_box(quantile_sorted(&copy, q));
        }
    });
    // The fixed shape: sort once, fan the queries out over the slice.
    bench("stats", "quantiles_sort_once", || {
        let mut copy = samples.clone();
        copy.sort_unstable();
        black_box(quantiles_sorted(&copy, &QS));
    });
}

fn bench_seqtrack() {
    use mmt_core::SeqTracker;
    bench("seqtrack", "record_10k_in_order", || {
        let mut t = SeqTracker::new();
        for s in 0..10_000u64 {
            t.record(s);
        }
        black_box(t.received_count());
    });
    bench("seqtrack", "record_10k_with_gaps", || {
        let mut t = SeqTracker::new();
        for s in (0..20_000u64).step_by(2) {
            t.record(s);
        }
        black_box(t.missing_ranges(32).len());
    });
}

fn main() {
    println!("M1 micro-benchmarks (self-contained harness; mean over a {MEASURE:?} window)\n");
    bench_wire();
    bench_dataplane();
    bench_daq();
    bench_netsim();
    bench_arena();
    bench_stats();
    bench_seqtrack();
}
