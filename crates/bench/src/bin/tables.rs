//! Regenerate every table and figure of the evaluation.
//!
//! ```sh
//! cargo run -p mmt-bench --release --bin tables            # everything
//! cargo run -p mmt-bench --release --bin tables -- e1 e2   # a subset
//! cargo run -p mmt-bench --release --bin tables -- --quick # reduced scale
//! cargo run -p mmt-bench --release --bin tables -- --json results/
//! ```
//!
//! Experiment ids follow DESIGN.md's per-experiment index: `t1`, `f2`,
//! `f3`, `p1`, `e1`–`e14`, `a1`, `a2`.

#![forbid(unsafe_code)]

use mmt_bench::{gbps, pct, TextTable};
use mmt_netsim::{Bandwidth, LossModel, Time};
use mmt_pilot::experiments::{
    alerts, aqm, backpressure, failover, faults, fct, hol, osmotic, payload, rates, scale, slices,
    supernova, throughput, timeliness, today,
};
use mmt_pilot::{Pilot, PilotConfig};
use std::path::PathBuf;

struct Opts {
    quick: bool,
    json_dir: Option<PathBuf>,
    selected: Vec<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        json_dir: None,
        selected: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--json" => {
                opts.json_dir = Some(PathBuf::from(
                    args.next().expect("--json requires a directory"),
                ))
            }
            other => opts.selected.push(other.to_lowercase()),
        }
    }
    opts
}

fn emit(table: TextTable, opts: &Opts) {
    table.print();
    if let Some(dir) = &opts.json_dir {
        table.write_json(dir).expect("write json");
    }
}

fn want(opts: &Opts, id: &str) -> bool {
    opts.selected.is_empty() || opts.selected.iter().any(|s| s == id || s == "all")
}

/// Render a latency-quantile cell (sketch-backed estimates; exact below
/// 32 ns, upper-biased by at most 1/32 above).
fn fmt_ns(v: Option<Time>) -> String {
    v.map(|t| t.to_string()).unwrap_or_default()
}

fn t1(opts: &Opts) {
    let mut t = TextTable::new(
        "T1 — Table 1: DAQ rates of large instruments (paper vs regenerated)",
        &[
            "experiment",
            "paper rate",
            "generated (Gb/s)",
            "rel. err",
            "record B",
            "records/s",
            "lanes",
        ],
    );
    for row in rates::table1() {
        t.row(vec![
            row.name.to_string(),
            row.paper_rate.to_string(),
            gbps(row.generated_rate_bps),
            pct(row.relative_error()),
            row.record_bytes.to_string(),
            format!("{:.3e}", row.records_per_sec),
            row.scale.to_string(),
        ]);
    }
    emit(t, opts);
}

fn f2_f3(opts: &Opts) {
    let seed = 3;
    for result in [today::run_today(seed), today::run_mmt(seed)] {
        let mut t = TextTable::new(
            format!(
                "{} — 40 MB batch through the 3-segment pipeline",
                result.pipeline
            ),
            &["segment", "transport", "active features", "stage time"],
        );
        for seg in &result.segments {
            t.row(vec![
                seg.segment.to_string(),
                seg.transport.to_string(),
                seg.features.to_string(),
                seg.stage_time.to_string(),
            ]);
        }
        t.row(vec![
            "TOTAL (batch)".into(),
            String::new(),
            String::new(),
            result.batch_total.to_string(),
        ]);
        t.row(vec![
            "urgent message".into(),
            String::new(),
            String::new(),
            result.urgent_message.to_string(),
        ]);
        emit(t, opts);
    }
}

fn p1(opts: &Opts) {
    let mut cfg = PilotConfig::default_run();
    if opts.quick {
        cfg.message_count = 500;
    }
    let count = cfg.message_count as u64;
    let mut pilot = Pilot::build(cfg);
    pilot.run(Time::from_secs(60));
    let mut r = pilot.report();
    // Fixed-memory sketch quantiles — no cached sample vector to sort.
    let lat = [r.latency.quantile(0.5), r.latency.quantile(0.99)];
    let mut t = TextTable::new(
        "P1/F4 — pilot study: three-mode run over the Fig. 4 topology",
        &["metric", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        (
            "messages sent (mode 0 at sensor)",
            r.sender.sent.to_string(),
        ),
        (
            "upgraded to mode 2 at DTN 1",
            r.buffer.forwarded.to_string(),
        ),
        ("age-updated at Tofino2", r.tofino.forwarded.to_string()),
        (
            "mode-3 checked at DTN 2 NIC",
            r.dtn2_switch.forwarded.to_string(),
        ),
        ("WAN corruption losses", r.wan_corruption_losses.to_string()),
        ("NAKs sent by receiver", r.receiver.naks_sent.to_string()),
        (
            "retransmitted from DTN 1 buffer",
            r.buffer.retransmitted.to_string(),
        ),
        ("sequences recovered", r.receiver.recovered.to_string()),
        ("sequences lost", r.receiver.lost.to_string()),
        ("delivered", format!("{} / {}", r.receiver.delivered, count)),
        ("latency p50", fmt_ns(lat[0])),
        ("latency p99", fmt_ns(lat[1])),
        ("aged deliveries", r.receiver.aged_deliveries.to_string()),
        (
            "deadline notifications at source",
            r.sender.deadline_notifications.to_string(),
        ),
        (
            "stream completion",
            r.completed_at
                .map(|t| t.to_string())
                .unwrap_or("INCOMPLETE".into()),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    emit(t, opts);
}

fn e1(opts: &Opts) {
    let mut params = fct::FctParams::default_run();
    if opts.quick {
        params.transfer_bytes = 10_000_000;
    }
    let mut t = TextTable::new(
        "E1 — flow-completion time: nearest-buffer vs source retransmission vs TCP (100 MB, 40+20 ms WAN, loss on far hop)",
        &["variant", "loss p", "FCT", "retransmissions", "wire losses", "completed"],
    );
    for loss in [1e-4, 1e-3, 1e-2] {
        params.loss = loss;
        for r in fct::run_all(&params) {
            t.row(vec![
                r.variant.name().to_string(),
                format!("{loss:.0e}"),
                r.fct.to_string(),
                r.retransmissions.to_string(),
                r.wire_losses.to_string(),
                r.completed.to_string(),
            ]);
        }
    }
    emit(t, opts);
}

fn e2(opts: &Opts) {
    let mut params = hol::HolParams::default_run();
    if opts.quick {
        params.messages = 4_000;
    }
    let mut t = TextTable::new(
        "E2 — head-of-line blocking: per-message latency over a lossy 20 ms WAN",
        &[
            "variant",
            "loss p",
            "p50",
            "p99",
            "max",
            "impacted",
            "delivered",
        ],
    );
    for loss in [0.0, 1e-3, 5e-3] {
        params.loss = loss;
        for mut r in hol::run_all(&params) {
            // Sketch quantiles; q = 1.0 is the exact tracked maximum.
            let lat = [
                r.latency.quantile(0.5),
                r.latency.quantile(0.99),
                r.latency.quantile(1.0),
            ];
            t.row(vec![
                r.variant.to_string(),
                format!("{loss:.0e}"),
                fmt_ns(lat[0]),
                fmt_ns(lat[1]),
                fmt_ns(lat[2]),
                pct(r.impacted_fraction),
                r.delivered.to_string(),
            ]);
        }
    }
    emit(t, opts);
}

fn e3(opts: &Opts) {
    let scale = if opts.quick { 0.1 } else { 1.0 };
    let mut t = TextTable::new(
        "E3 — single-stream goodput vs link rate (10 ms RTT, no loss)",
        &["link", "variant", "goodput (Gb/s)"],
    );
    for r in throughput::sweep(scale) {
        t.row(vec![
            r.link.to_string(),
            r.variant.to_string(),
            format!("{:.1}", r.goodput_gbps()),
        ]);
    }
    emit(t, opts);
}

fn e4(opts: &Opts) {
    let messages = if opts.quick { 200 } else { 1_000 };
    let mut t = TextTable::new(
        "E4 — timeliness enforcement: deadline budget sweep (10 ms-RTT WAN, ~5 ms path)",
        &["budget", "aged fraction", "notifications", "delivered"],
    );
    for r in timeliness::sweep(messages) {
        t.row(vec![
            r.budget.to_string(),
            pct(r.aged_fraction),
            r.notifications.to_string(),
            r.delivered.to_string(),
        ]);
    }
    emit(t, opts);
}

fn e5(opts: &Opts) {
    let mut t = TextTable::new(
        "E5 — alert fan-out: last-subscriber latency",
        &["subscribers", "variant", "first", "last"],
    );
    for r in alerts::sweep() {
        t.row(vec![
            r.subscribers.to_string(),
            r.variant.to_string(),
            r.first.to_string(),
            r.last.to_string(),
        ]);
    }
    emit(t, opts);
}

fn e6(opts: &Opts) {
    let r = supernova::run(2026);
    let mut t = TextTable::new(
        "E6 — DUNE → Vera Rubin supernova early warning",
        &["metric", "value"],
    );
    for (k, v) in [
        ("burst onset", r.burst_start.to_string()),
        ("trigger fired", r.detected_at.to_string()),
        (
            "delivery budget (1% of min photon lag)",
            r.budget.to_string(),
        ),
        ("MMT alert latency", r.mmt_alert_latency.to_string()),
        ("MMT within budget", r.mmt_within_budget.to_string()),
        (
            "staged-path alert latency",
            r.staged_alert_latency.to_string(),
        ),
        ("staged within budget", r.staged_within_budget.to_string()),
    ] {
        t.row(vec![k.to_string(), v]);
    }
    emit(t, opts);
}

fn e7(opts: &Opts) {
    let messages = if opts.quick { 2_000 } else { 5_000 };
    let mut t = TextTable::new(
        "E7 — capacity planning vs backpressure (10 Gb/s WAN bottleneck)",
        &[
            "condition",
            "offered",
            "queue drops",
            "NAKs",
            "lost",
            "delivered/sent",
        ],
    );
    for r in backpressure::run_all(messages) {
        t.row(vec![
            r.condition.to_string(),
            r.offered.to_string(),
            r.queue_drops.to_string(),
            r.naks.to_string(),
            r.lost.to_string(),
            format!("{}/{}", r.delivered, r.sent),
        ]);
    }
    emit(t, opts);
}

fn e8(opts: &Opts) {
    use mmt_dataplane::programs;
    use mmt_dataplane::ResourceBudget;
    use mmt_wire::mmt::Features;
    use mmt_wire::Ipv4Address;
    let programs: Vec<(&str, mmt_dataplane::Pipeline)> = vec![
        (
            "DAQ→WAN border (mode upgrade)",
            programs::daq_to_wan_border(programs::BorderConfig {
                daq_port: 0,
                wan_port: 1,
                retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
                deadline_budget_ns: 50_000_000,
                notify_addr: Ipv4Address::new(10, 0, 0, 1),
                priority_class: Some(1),
            }),
        ),
        (
            "WAN transit (age update)",
            programs::wan_transit(0, 1, 40_000_000),
        ),
        (
            "destination check (mode 3)",
            programs::destination_check(0, 1, 2),
        ),
        (
            "alert duplicator (8 subscribers)",
            programs::alert_duplicator(0, 1, 5, &[2, 3, 4, 5, 6, 7, 8, 9]),
        ),
        (
            "campus downgrade",
            programs::downgrade_border(0, 1, Features::RETRANSMIT | Features::ACK_NAK),
        ),
    ];
    let tofino = ResourceBudget::tofino2();
    let alveo = ResourceBudget::alveo_smartnic();
    let mut t = TextTable::new(
        "E8 — mode-transition programs vs hardware resource budgets",
        &[
            "program",
            "tables",
            "entries",
            "key fields",
            "registers",
            "fits Tofino2",
            "fits Alveo",
            "pressure",
        ],
    );
    for (name, p) in programs {
        let u = p.resource_usage();
        t.row(vec![
            name.to_string(),
            u.tables.to_string(),
            u.entries.to_string(),
            u.key_fields.to_string(),
            u.registers.to_string(),
            tofino.admits(&u).to_string(),
            alveo.admits(&u).to_string(),
            {
                let ppm = tofino.pressure_ppm(&u);
                format!("{}.{}%", ppm / 10_000, ppm % 10_000 / 1_000)
            },
        ]);
    }
    emit(t, opts);
}

fn e9(opts: &Opts) {
    let r = slices::run(4, if opts.quick { 50 } else { 200 }, 9);
    let mut t = TextTable::new(
        "E9 — instrument slicing (Req 8) and shared DAQ header reuse (Req 9)",
        &["metric", "value"],
    );
    for (k, v) in [
        (
            "per-slice deliveries",
            format!("{:?}", r.per_slice_delivered),
        ),
        ("cross-slice deliveries", r.cross_deliveries.to_string()),
        (
            "DUNE records round-tripped",
            format!("{}/50", r.dune_records_ok),
        ),
        (
            "Mu2e records round-tripped",
            format!("{}/50", r.mu2e_records_ok),
        ),
    ] {
        t.row(vec![k.to_string(), v]);
    }
    emit(t, opts);
}

fn e10(opts: &Opts) {
    let duration = Time::from_secs(if opts.quick { 5 } else { 30 });
    let r = osmotic::run(duration, 5);
    let mut t = TextTable::new(
        "E10 — osmotic sensors over cell backhaul, integrated via the gateway border",
        &["metric", "value"],
    );
    for (k, v) in [
        ("readings produced", r.produced.to_string()),
        (
            "lost on backhaul (mode 0, unrecoverable)",
            r.lost_on_backhaul.to_string(),
        ),
        ("entered WAN (mode 2)", r.entered_wan.to_string()),
        ("recovered by NAK on WAN", r.recovered_on_wan.to_string()),
        ("delivered to archive", r.delivered.to_string()),
        ("WAN delivery ratio", pct(r.wan_delivery_ratio)),
    ] {
        t.row(vec![k.to_string(), v]);
    }
    emit(t, opts);
}

fn e11(opts: &Opts) {
    let r = payload::run(3);
    let mut t = TextTable::new(
        "E11 — in-path payload processing: storage transcoding + in-path alert generation",
        &["metric", "value"],
    );
    let fmt = |t: Option<mmt_netsim::Time>| t.map(|x| x.to_string()).unwrap_or("—".into());
    for (k, v) in [
        ("records streamed", r.records.to_string()),
        ("containers written at archive", r.containers.to_string()),
        (
            "records packed into containers",
            r.records_stored.to_string(),
        ),
        ("burst detected in-path (FNAL)", fmt(r.inpath_detected_at)),
        (
            "burst detected at end host (archive)",
            fmt(r.endhost_detected_at),
        ),
        ("alert at telescope, in-path", fmt(r.inpath_alert_at)),
        (
            "alert at telescope, end-host baseline",
            fmt(r.endhost_alert_at),
        ),
    ] {
        t.row(vec![k.to_string(), v]);
    }
    emit(t, opts);
}

fn e12(opts: &Opts) {
    let mut p = faults::FaultParams::default_run();
    if opts.quick {
        p.messages = 300;
    }
    let mut t = TextTable::new(
        "E12 — fault sweep: NAK recovery under composed WAN faults (reorder/dup/jitter/flap/NAK loss)",
        &[
            "scenario",
            "complete",
            "delivered",
            "dups seen",
            "naks",
            "recovered",
            "lost",
            "flap drops",
            "ctrl drops",
            "completed at",
        ],
    );
    for r in faults::run_all(&p) {
        t.row(vec![
            r.name.to_string(),
            if r.complete { "yes" } else { "NO" }.to_string(),
            r.delivered.to_string(),
            r.duplicates.to_string(),
            r.naks_sent.to_string(),
            r.recovered.to_string(),
            r.lost.to_string(),
            r.flap_drops.to_string(),
            r.control_drops.to_string(),
            r.completed_at.map(|t| t.to_string()).unwrap_or("—".into()),
        ]);
    }
    emit(t, opts);
}

fn e13(opts: &Opts) {
    let mut p = failover::FailoverParams::default_run();
    if opts.quick {
        p.messages = 400;
        p.loss = 1e-2;
    }
    let mut t = TextTable::new(
        "E13 — DTN 1 crash at 6 ms: closed-loop re-homed recovery vs no adaptation",
        &[
            "arm",
            "complete",
            "delivered",
            "lost",
            "retries exhausted",
            "rehomed",
            "standby served",
            "transitions",
            "recovery latency",
            "goodput",
        ],
    );
    for r in failover::run_all(&p) {
        t.row(vec![
            r.name.to_string(),
            if r.complete { "yes" } else { "NO" }.to_string(),
            r.delivered.to_string(),
            r.lost.to_string(),
            r.nak_retries_exhausted.to_string(),
            if r.rehomed { "yes" } else { "no" }.to_string(),
            r.standby_served.to_string(),
            r.transitions.to_string(),
            r.recovery_latency
                .map(|t| t.to_string())
                .unwrap_or("—".into()),
            gbps(r.goodput_bps),
        ]);
    }
    emit(t, opts);
}

fn e14(opts: &Opts) {
    let rows = if opts.quick {
        scale::quick(1)
    } else {
        scale::full(1)
    };
    let mut t = TextTable::new(
        "E14 — many-flow scale-out: sharded fleet vs serial (byte-identical digests required)",
        &[
            "shards",
            "sensors",
            "DTN groups",
            "delivered",
            "events",
            "digest",
            "imbalance",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.shards.to_string(),
            r.sensors.to_string(),
            r.dtns.to_string(),
            r.delivered.to_string(),
            r.events.to_string(),
            format!("{:016x}", r.digest),
            format!("{:.3}", r.imbalance),
        ]);
    }
    let deterministic = rows.windows(2).all(|w| w[0].digest == w[1].digest);
    t.row(vec![
        "DETERMINISTIC".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        if deterministic { "yes" } else { "NO" }.into(),
        String::new(),
    ]);
    emit(t, opts);

    // The high-K ladder: one row per fleet size at a fixed shard count.
    // Deterministic quantities only — the memory columns of the
    // EXPERIMENTS.md ladder table come from `mmt-sim bench --sensors K`
    // (peak_rss_per_flow_bytes in BENCH_scale.json), which must run in a
    // fresh process because VmHWM is monotone.
    let cells: &[usize] = if opts.quick {
        &[1_000]
    } else {
        &[100_000, 1_000_000]
    };
    let ladder = scale::ladder(cells, 4, 1);
    let mut t = TextTable::new(
        "E14 — high-K ladder (4 shards; per-flow RSS regenerated by mmt-sim bench)",
        &[
            "sensors",
            "shards",
            "DTN groups",
            "delivered",
            "events",
            "digest",
        ],
    );
    for r in &ladder {
        t.row(vec![
            r.sensors.to_string(),
            r.shards.to_string(),
            r.dtns.to_string(),
            r.delivered.to_string(),
            r.events.to_string(),
            format!("{:016x}", r.digest),
        ]);
    }
    emit(t, opts);
}

fn a1_a2(opts: &Opts) {
    let mut t = TextTable::new(
        "A1 — deadline-aware AQM vs drop-tail under 2x overload (50/50 aged/fresh)",
        &["queue", "fresh delivered", "aged delivered", "drops"],
    );
    for aware in [false, true] {
        let r = aqm::run_aqm(aware, 400, 1);
        t.row(vec![
            r.queue.to_string(),
            pct(r.fresh_delivery_ratio),
            pct(r.aged_delivery_ratio),
            r.drops.to_string(),
        ]);
    }
    emit(t, opts);
    let mut t = TextTable::new(
        "A2 — strict-priority band for age-sensitive alerts behind a bulk elephant",
        &["queue", "alerts delivered", "worst alert latency"],
    );
    for strict in [false, true] {
        let r = aqm::run_priority(strict, 2);
        t.row(vec![
            r.queue.to_string(),
            r.alerts_delivered.to_string(),
            r.alert_max_latency.to_string(),
        ]);
    }
    emit(t, opts);
}

fn main() {
    let opts = parse_args();
    println!("# Shape-shifting Elephants — regenerated tables and figures");
    println!(
        "# mode: {}  (ids: t1 f2 f3 p1 e1..e14 a1 a2; --quick for reduced scale)",
        if opts.quick { "quick" } else { "full" }
    );
    let _ = (Bandwidth::gbps(1), LossModel::None); // re-exports sanity
    if want(&opts, "t1") {
        t1(&opts);
    }
    if want(&opts, "f2") || want(&opts, "f3") {
        f2_f3(&opts);
    }
    if want(&opts, "p1") || want(&opts, "f4") {
        p1(&opts);
    }
    if want(&opts, "e1") {
        e1(&opts);
    }
    if want(&opts, "e2") {
        e2(&opts);
    }
    if want(&opts, "e3") {
        e3(&opts);
    }
    if want(&opts, "e4") {
        e4(&opts);
    }
    if want(&opts, "e5") {
        e5(&opts);
    }
    if want(&opts, "e6") {
        e6(&opts);
    }
    if want(&opts, "e7") {
        e7(&opts);
    }
    if want(&opts, "e8") {
        e8(&opts);
    }
    if want(&opts, "e9") {
        e9(&opts);
    }
    if want(&opts, "e10") {
        e10(&opts);
    }
    if want(&opts, "e11") {
        e11(&opts);
    }
    if want(&opts, "e12") {
        e12(&opts);
    }
    if want(&opts, "e13") {
        e13(&opts);
    }
    if want(&opts, "e14") {
        e14(&opts);
    }
    if want(&opts, "a1") || want(&opts, "a2") {
        a1_a2(&opts);
    }
}
