//! The many-flow scale bench: wall-clock throughput of the fleet under
//! 1/2/4(/N) shards, emitted as `BENCH_scale.json`.
//!
//! The simulator side ([`mmt_pilot::manyflow`] over
//! [`mmt_netsim::ShardedSim`]) is deliberately clock-free — the
//! determinism lint bans wall time inside sim-critical crates — so this
//! module owns every non-deterministic measurement: elapsed wall time,
//! packets/sec, events/sec, and the peak-RSS proxy read from
//! `/proc/self/status` (0 where unavailable).
//!
//! ## Per-flow memory cells
//!
//! `VmHWM` is monotone, so honesty about *per-flow* resident cost needs
//! careful ordering: the memory ladder ([`ScaleBenchConfig::memory_sensors`])
//! runs FIRST in the process — before the warm-up and the throughput
//! sweep — in ascending K, and each cell snapshots the high-water mark
//! right after its fleet completes. `peak_rss_per_flow_bytes` therefore
//! includes the process baseline amortized over K (pessimistic, never
//! flattering), and a later, larger run can never pollute an earlier,
//! smaller cell. [`check_budget`] turns the figures into a regression
//! gate against a checked-in budget file.

use std::time::Instant;

use mmt_netsim::SpanProfiler;
use mmt_pilot::manyflow::{self, ManyFlowConfig};
use mmt_telemetry::json::{self, JsonObject};

/// Parameters of a scale bench run.
#[derive(Debug, Clone)]
pub struct ScaleBenchConfig {
    /// Total sensors (K).
    pub sensors: usize,
    /// Packets each sensor emits.
    pub packets_per_sensor: usize,
    /// Shard counts to sweep; the first entry is the speedup baseline
    /// (conventionally 1, the serial run).
    pub shard_counts: Vec<usize>,
    /// Root seed (shared by every sweep point so digests must agree).
    pub seed: u64,
    /// Run every sweep point with the hot-path span profiler on and
    /// record the per-stage attribution in the result.
    pub profile: bool,
    /// Event schedulers to sweep (`"wheel"` and/or `"heap"`). The default
    /// runs both so one document carries the differential evidence: every
    /// row's digest must match, which proves the timing wheel reproduces
    /// the heap's event order byte-for-byte while the `events_per_sec`
    /// columns show what the wheel buys.
    pub schedulers: Vec<String>,
    /// Fleet sizes for the per-flow memory ladder, run before anything
    /// else in ascending order (see the module docs on `VmHWM`
    /// monotonicity). Empty = no memory cells.
    pub memory_sensors: Vec<usize>,
}

impl ScaleBenchConfig {
    /// The acceptance shape: K = 10 000 sensors, serial vs 2 and 4 shards,
    /// profiler on (the default `BENCH_scale.json` must attribute stages),
    /// memory cells at K = 10 000 and K = 100 000.
    pub fn full() -> ScaleBenchConfig {
        ScaleBenchConfig {
            sensors: 10_000,
            packets_per_sensor: 8,
            shard_counts: vec![1, 2, 4],
            seed: 1,
            profile: true,
            schedulers: vec!["wheel".to_string(), "heap".to_string()],
            memory_sensors: vec![10_000, 100_000],
        }
    }

    /// A seconds-fast variant for CI smoke.
    pub fn quick() -> ScaleBenchConfig {
        ScaleBenchConfig {
            sensors: 256,
            packets_per_sensor: 4,
            shard_counts: vec![1, 2, 4],
            seed: 1,
            profile: false,
            schedulers: vec!["wheel".to_string(), "heap".to_string()],
            memory_sensors: vec![256, 1024],
        }
    }

    /// Restrict the sweep to one scheduler (the `--scheduler` CLI flag).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: &str) -> ScaleBenchConfig {
        self.schedulers = vec![scheduler.to_string()];
        self
    }

    /// With the span profiler on.
    #[must_use]
    pub fn with_profile(mut self) -> ScaleBenchConfig {
        self.profile = true;
        self
    }

    /// With the span profiler off (the `--profile 0` CLI override).
    #[must_use]
    pub fn without_profile(mut self) -> ScaleBenchConfig {
        self.profile = false;
        self
    }

    /// Replace the memory ladder (the `--sensors` CLI flag derives cells
    /// from the target K). Cells are sorted ascending — `VmHWM` is
    /// monotone, so any other order would corrupt the smaller cells.
    #[must_use]
    pub fn with_memory_sensors(mut self, cells: Vec<usize>) -> ScaleBenchConfig {
        self.memory_sensors = cells;
        self.memory_sensors.sort_unstable();
        self.memory_sensors.dedup();
        self
    }
}

/// One rung of the per-flow memory ladder.
#[derive(Debug, Clone)]
pub struct MemoryCell {
    /// Fleet size (K).
    pub sensors: usize,
    /// Packets the cell's fleet delivered (completeness check: the RSS
    /// figure is meaningless if the run died early).
    pub packets: u64,
    /// `VmHWM` right after this cell's fleet completed (kB).
    pub peak_rss_kb: u64,
    /// `peak_rss_kb × 1024 / sensors` — resident bytes per flow,
    /// process baseline included (see the module docs).
    pub peak_rss_per_flow_bytes: u64,
}

/// One sweep point: the fleet at a given shard count.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Event scheduler this row ran under (`"wheel"` or `"heap"`).
    pub scheduler: String,
    /// Shards used.
    pub shards: usize,
    /// Wall-clock nanoseconds for the whole fleet.
    pub wall_ns: u64,
    /// Packets delivered.
    pub packets: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Delivered packets per wall-clock second.
    pub packets_per_sec: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Speedup over the first (baseline) row.
    pub speedup: f64,
    /// Merged digest — equal across rows or the bench is invalid.
    pub digest: u64,
    /// Each shard's share of events (sums to 1).
    pub shard_utilization: Vec<f64>,
}

/// The bench outcome: one row per shard count plus process-level context.
#[derive(Debug, Clone)]
pub struct ScaleBenchResult {
    /// The configuration measured.
    pub config: ScaleBenchConfig,
    /// One row per entry of `config.shard_counts`.
    pub rows: Vec<ScaleRow>,
    /// The per-flow memory ladder (one cell per
    /// `config.memory_sensors` entry, ascending K).
    pub memory: Vec<MemoryCell>,
    /// Peak resident set (kB) after the sweep — a proxy, read once at the
    /// end, so it reflects the largest configuration run.
    pub peak_rss_kb: u64,
    /// Cores available to this process. `ShardedSim` clamps its worker
    /// threads to this, so speedup is bounded by `min(shards, host_cores)`
    /// — a 1-core container reports ≈1× by construction.
    pub host_cores: usize,
    /// Per-stage span attribution from the baseline sweep point (zeroed
    /// unless `config.profile`); identical across shard counts, which the
    /// run asserts via the merged digests.
    pub profile: SpanProfiler,
    /// Peak RSS (kB) right after the sketch-mode sweep.
    pub peak_rss_sketch_kb: u64,
    /// Peak RSS (kB) after one additional serial run that retains exact
    /// latency-sample vectors (the representation the sketch replaced).
    pub peak_rss_exact_kb: u64,
    /// `peak_rss_exact_kb − peak_rss_sketch_kb`: the high-water-mark
    /// growth attributable to cached full-sample vectors. An honesty
    /// field — `VmHWM` is monotone, so small fleets can legitimately
    /// report 0 when the exact run fits under the sweep's peak.
    pub rss_delta_kb: u64,
}

impl ScaleBenchResult {
    /// Whether every row produced the same merged digest. With both
    /// schedulers in the sweep this is also the wheel-vs-heap equivalence
    /// gate: a wheel that reorders even one event tie fails here.
    pub fn deterministic(&self) -> bool {
        self.rows.windows(2).all(|w| w[0].digest == w[1].digest)
    }

    /// The best speedup over the baseline row.
    pub fn best_speedup(&self) -> f64 {
        self.rows.iter().map(|r| r.speedup).fold(0.0, f64::max)
    }

    /// Render as the `BENCH_scale.json` document.
    pub fn to_json(&self) -> String {
        // With the profiler off the span totals are all zero — emitting
        // them as rows would read as "profiled, and everything cost
        // nothing". Emit an explicit null instead.
        let profile = if self.config.profile {
            json::array(
                self.profile
                    .rows()
                    .into_iter()
                    .map(|(stage, events, vtime_ns)| {
                        JsonObject::new()
                            .str("stage", stage)
                            .u64("events", events)
                            .u64("vtime_ns", vtime_ns)
                            .finish()
                    }),
            )
        } else {
            "null".to_string()
        };
        let rows = self.rows.iter().map(|r| {
            JsonObject::new()
                .str("scheduler", &r.scheduler)
                .u64("shards", r.shards as u64)
                .u64("wall_ns", r.wall_ns)
                .u64("packets", r.packets)
                .u64("events", r.events)
                .f64("packets_per_sec", r.packets_per_sec)
                .f64("events_per_sec", r.events_per_sec)
                .f64("speedup", r.speedup)
                .str("digest", &format!("{:016x}", r.digest))
                .raw(
                    "shard_utilization",
                    &json::array(r.shard_utilization.iter().map(|u| json::number(*u))),
                )
                .finish()
        });
        let memory = self.memory.iter().map(|c| {
            JsonObject::new()
                .u64("sensors", c.sensors as u64)
                .u64("packets", c.packets)
                .u64("peak_rss_kb", c.peak_rss_kb)
                .u64("peak_rss_per_flow_bytes", c.peak_rss_per_flow_bytes)
                .finish()
        });
        JsonObject::new()
            .str("bench", "scale")
            .u64("sensors", self.config.sensors as u64)
            .u64("packets_per_sensor", self.config.packets_per_sensor as u64)
            .u64("seed", self.config.seed)
            .bool("deterministic", self.deterministic())
            .f64("best_speedup", self.best_speedup())
            .u64("peak_rss_kb", self.peak_rss_kb)
            .u64("host_cores", self.host_cores as u64)
            .u64("peak_rss_sketch_kb", self.peak_rss_sketch_kb)
            .u64("peak_rss_exact_kb", self.peak_rss_exact_kb)
            .u64("rss_delta_kb", self.rss_delta_kb)
            .raw("memory", &json::array(memory))
            .raw("rows", &json::array(rows))
            .raw("profile", &profile)
            .finish()
    }
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`);
/// 0 when the file or field is unavailable (non-Linux).
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let digits: String = rest.chars().filter(char::is_ascii_digit).collect();
            return digits.parse().unwrap_or(0);
        }
    }
    0
}

/// Run the sweep. Each shard count runs the *same* fleet (same seed, same
/// groups); only the thread layout differs, which is why the digests must
/// match and wall time may not.
pub fn run(cfg: &ScaleBenchConfig) -> ScaleBenchResult {
    let mut rows = Vec::with_capacity(cfg.shard_counts.len() * cfg.schedulers.len());
    // The memory ladder runs before anything else touches the heap in
    // anger: VmHWM is monotone, so each ascending cell's snapshot is the
    // true high-water mark of "process baseline + a K-flow fleet" and the
    // later throughput sweep cannot deflate or inflate it retroactively.
    let mut memory = Vec::with_capacity(cfg.memory_sensors.len());
    {
        let mut ladder = cfg.memory_sensors.clone();
        ladder.sort_unstable();
        for k in ladder {
            let mut fleet = ManyFlowConfig::fleet(k, 1, cfg.seed);
            fleet.packets_per_sensor = cfg.packets_per_sensor;
            let report = manyflow::run(&fleet);
            let rss_kb = peak_rss_kb();
            memory.push(MemoryCell {
                sensors: k,
                packets: report.shard.packets,
                peak_rss_kb: rss_kb,
                peak_rss_per_flow_bytes: rss_kb
                    .saturating_mul(1024)
                    .checked_div(k as u64)
                    .unwrap_or(0),
            });
        }
    }
    // Warm-up: run the full fleet once, unmeasured, so the first measured
    // row doesn't pay the process's page faults and allocator growth for
    // everyone (row order would otherwise masquerade as speedup).
    {
        let mut warm = ManyFlowConfig::fleet(cfg.sensors, 1, cfg.seed);
        warm.packets_per_sensor = cfg.packets_per_sensor;
        let _ = manyflow::run(&warm);
    }
    let mut profile = SpanProfiler::new();
    let mut profiled = false;
    for scheduler in &cfg.schedulers {
        // Speedup is meaningful only within one scheduler, so each
        // scheduler's serial row restarts the baseline.
        let mut baseline_wall_ns = 0u64;
        for &shards in &cfg.shard_counts {
            let mut fleet = ManyFlowConfig::fleet(cfg.sensors, shards, cfg.seed);
            fleet.packets_per_sensor = cfg.packets_per_sensor;
            fleet.profile = cfg.profile;
            fleet.heap_scheduler = scheduler == "heap";
            let start = Instant::now();
            let report = manyflow::run(&fleet);
            let wall_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            if baseline_wall_ns == 0 {
                baseline_wall_ns = wall_ns.max(1);
                if !profiled {
                    profile = report.shard.profile.clone();
                    profiled = true;
                }
            }
            let secs = (wall_ns.max(1)) as f64 / 1e9;
            rows.push(ScaleRow {
                scheduler: scheduler.clone(),
                shards,
                wall_ns,
                packets: report.shard.packets,
                events: report.shard.events,
                packets_per_sec: report.shard.packets as f64 / secs,
                events_per_sec: report.shard.events as f64 / secs,
                speedup: baseline_wall_ns as f64 / wall_ns.max(1) as f64,
                digest: report.shard.trace_digest,
                shard_utilization: report.shard.shard_utilization(),
            });
        }
    }
    // The RSS honesty pair: snapshot the high-water mark after the
    // sketch-mode sweep, then run the serial fleet once more with exact
    // latency samples retained (the representation the sketch replaced)
    // and snapshot again. VmHWM is monotone, so ordering matters: the
    // sketch figure must be taken first or the exact run would pollute it.
    let peak_rss_sketch_kb = peak_rss_kb();
    {
        let mut exact = ManyFlowConfig::fleet(cfg.sensors, 1, cfg.seed).with_exact_latency();
        exact.packets_per_sensor = cfg.packets_per_sensor;
        let _ = manyflow::run(&exact);
    }
    let peak_rss_exact_kb = peak_rss_kb();
    ScaleBenchResult {
        config: cfg.clone(),
        rows,
        memory,
        peak_rss_kb: peak_rss_exact_kb.max(peak_rss_sketch_kb),
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        profile,
        peak_rss_sketch_kb,
        peak_rss_exact_kb,
        rss_delta_kb: peak_rss_exact_kb.saturating_sub(peak_rss_sketch_kb),
    }
}

/// One budget line parsed from `BENCH_budget.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetCell {
    /// Fleet size the budget applies to.
    pub sensors: u64,
    /// Budgeted resident bytes per flow.
    pub peak_rss_per_flow_bytes: u64,
}

/// First unsigned integer following `"key":` in `text`. Whitespace
/// between the colon and the digits is tolerated; anything else fails the
/// lookup (strictness over guessing).
fn u64_after(text: &str, key: &str) -> Option<u64> {
    let probe = format!("\"{key}\"");
    let at = text.find(&probe)? + probe.len();
    let rest = text.get(at..)?.trim_start().strip_prefix(':')?;
    let digits = rest.trim_start();
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map_or(digits.len(), |(i, _)| i);
    digits.get(..end)?.parse().ok()
}

/// Parse the checked-in budget file: a JSON document whose `cells` array
/// holds `{"sensors": K, "peak_rss_per_flow_bytes": N}` objects. The
/// parser is a lenient scanner (this workspace has no JSON reader and
/// takes no dependencies): each `"sensors"` occurrence opens a cell, and
/// the per-flow figure is read from the text between it and the next
/// `"sensors"` occurrence.
pub fn parse_budget(text: &str) -> Vec<BudgetCell> {
    let probe = "\"sensors\"";
    let mut cells = Vec::new();
    let mut starts: Vec<usize> = Vec::new();
    let mut from = 0usize;
    while let Some(found) = text.get(from..).and_then(|t| t.find(probe)) {
        starts.push(from + found);
        from += found + probe.len();
    }
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(text.len());
        let Some(chunk) = text.get(start..end) else {
            continue;
        };
        if let (Some(sensors), Some(per_flow)) = (
            u64_after(chunk, "sensors"),
            u64_after(chunk, "peak_rss_per_flow_bytes"),
        ) {
            cells.push(BudgetCell {
                sensors,
                peak_rss_per_flow_bytes: per_flow,
            });
        }
    }
    cells
}

/// The RSS regression gate: every measured memory cell with a matching
/// budget line must stay within +10% of its budget. Returns a
/// human-readable violation list on failure; cells without a budget line
/// (new ladder rungs) pass, and an empty/unparseable budget fails loudly
/// rather than silently waving runs through.
pub fn check_budget(measured: &[MemoryCell], budget_text: &str) -> Result<(), String> {
    let budget = parse_budget(budget_text);
    if budget.is_empty() {
        return Err("budget file contains no parseable cells".to_string());
    }
    let mut violations = Vec::new();
    for cell in measured {
        let Some(b) = budget.iter().find(|b| b.sensors == cell.sensors as u64) else {
            continue;
        };
        let limit = b.peak_rss_per_flow_bytes + b.peak_rss_per_flow_bytes / 10;
        if cell.peak_rss_per_flow_bytes > limit {
            violations.push(format!(
                "K={}: {} B/flow exceeds budget {} B/flow (+10% limit {})",
                cell.sensors, cell.peak_rss_per_flow_bytes, b.peak_rss_per_flow_bytes, limit
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_deterministic_and_well_formed() {
        let result = run(&ScaleBenchConfig::quick());
        assert_eq!(result.rows.len(), 6, "2 schedulers x 3 shard counts");
        assert!(
            result.deterministic(),
            "digests diverged across shards/schedulers"
        );
        assert!(result.rows.iter().all(|r| r.packets == 256 * 4));
        assert!(result.rows.iter().all(|r| r.packets_per_sec > 0.0));
        assert_eq!(
            result
                .rows
                .iter()
                .filter(|r| r.scheduler == "wheel")
                .count(),
            3
        );
        assert_eq!(
            result.rows.iter().filter(|r| r.scheduler == "heap").count(),
            3
        );
        let json = result.to_json();
        assert!(json.contains("\"scheduler\":\"wheel\""));
        assert!(json.contains("\"scheduler\":\"heap\""));
        assert!(json.contains("\"bench\":\"scale\""));
        assert!(json.contains("\"deterministic\":true"));
        assert!(json.contains("\"rows\":["));
        // Profiling was off: the field must be an explicit null, not an
        // array of all-zero rows masquerading as a measurement.
        assert!(json.contains("\"profile\":null"));
        assert!(!json.contains("\"profile\":["));
        assert!(json.contains("\"rss_delta_kb\":"));
        assert_eq!(result.profile.total_events(), 0);
    }

    #[test]
    fn profiled_sweep_records_hot_path_stages() {
        let result = run(&ScaleBenchConfig::quick().with_profile());
        assert!(result.deterministic(), "digests diverged across shards");
        let rows = result.profile.rows();
        assert_eq!(rows.len(), 7, "full stage taxonomy must render");
        let active = rows.iter().filter(|(_, events, _)| *events > 0).count();
        assert!(active >= 5, "expected >=5 active stages, got {active}");
        let vtime_total: u64 = rows.iter().map(|(_, _, v)| v).sum();
        assert!(vtime_total > 0, "virtual-time attribution must be nonzero");
        let json = result.to_json();
        assert!(json.contains("\"profile\":["));
        assert!(json.contains("\"stage\":\"link_delivery\""));
        // The regression the full-bench artifact once shipped: a profile
        // block whose seven stages all read 0 events. Pin the hot stage.
        let link = rows
            .iter()
            .find(|(stage, _, _)| *stage == "link_delivery")
            .map(|(_, events, _)| *events)
            .unwrap_or(0);
        assert!(link > 0, "link_delivery must attribute events");
    }

    #[test]
    fn full_config_profiles_and_ladders_by_default() {
        let cfg = ScaleBenchConfig::full();
        assert!(
            cfg.profile,
            "default BENCH_scale.json must attribute stages"
        );
        assert_eq!(cfg.memory_sensors, vec![10_000, 100_000]);
        assert!(!ScaleBenchConfig::quick().profile, "CI smoke stays cheap");
    }

    #[test]
    fn memory_cells_report_per_flow_figures() {
        let mut cfg = ScaleBenchConfig::quick().with_scheduler("wheel");
        cfg.shard_counts = vec![1];
        cfg.memory_sensors = vec![1024, 256]; // run() must sort ascending
        let result = run(&cfg);
        assert_eq!(result.memory.len(), 2);
        assert_eq!(result.memory[0].sensors, 256, "ascending K");
        assert_eq!(result.memory[1].sensors, 1024);
        for cell in &result.memory {
            assert_eq!(cell.packets, cell.sensors as u64 * 4);
            if cfg!(target_os = "linux") {
                assert!(cell.peak_rss_kb > 0);
                assert!(cell.peak_rss_per_flow_bytes > 0);
            }
        }
        // VmHWM is monotone, so ascending cells never report shrinkage.
        assert!(result.memory[1].peak_rss_kb >= result.memory[0].peak_rss_kb);
        let json = result.to_json();
        assert!(json.contains("\"memory\":[{\"sensors\":256"));
        assert!(json.contains("\"peak_rss_per_flow_bytes\":"));
    }

    #[test]
    fn budget_parser_reads_cells_and_gate_enforces_ten_percent() {
        let budget = r#"{
            "budget": "flow-rss",
            "cells": [
                {"sensors": 10000, "peak_rss_per_flow_bytes": 200},
                {"sensors": 100000, "peak_rss_per_flow_bytes": 150}
            ]
        }"#;
        let cells = parse_budget(budget);
        assert_eq!(
            cells,
            vec![
                BudgetCell {
                    sensors: 10000,
                    peak_rss_per_flow_bytes: 200
                },
                BudgetCell {
                    sensors: 100000,
                    peak_rss_per_flow_bytes: 150
                },
            ]
        );
        let cell = |sensors: usize, per_flow: u64| MemoryCell {
            sensors,
            packets: 1,
            peak_rss_kb: 0,
            peak_rss_per_flow_bytes: per_flow,
        };
        // Within budget, exactly at the +10% limit, and unbudgeted cells
        // all pass; one byte over the limit fails with the cell named.
        assert!(check_budget(&[cell(10000, 199)], budget).is_ok());
        assert!(check_budget(&[cell(10000, 220)], budget).is_ok());
        assert!(check_budget(&[cell(1, 999_999)], budget).is_ok());
        let err = check_budget(&[cell(10000, 221), cell(100000, 140)], budget)
            .expect_err("over-limit cell must fail");
        assert!(err.contains("K=10000"), "violation names the cell: {err}");
        assert!(!err.contains("K=100000"), "in-budget cell not named: {err}");
        // An empty or unparseable budget fails loudly.
        assert!(check_budget(&[cell(10000, 1)], "{}").is_err());
    }

    #[test]
    fn rss_proxy_reports_on_linux() {
        let rss = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM should be readable on Linux");
        }
    }
}
