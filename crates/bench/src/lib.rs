//! # `mmt-bench` — the table/figure regeneration harness
//!
//! The `tables` binary (`cargo run -p mmt-bench --release --bin tables`)
//! re-runs every experiment in DESIGN.md's per-experiment index and prints
//! the rows/series the paper's evaluation reports; the `microbench` bench
//! (`cargo bench -p mmt-bench`) measures the software packet-processing
//! costs (M1) with a self-contained harness.
//!
//! This library hosts the small shared pieces: an aligned-text table
//! printer and JSON result records (serialized with `mmt-telemetry`'s
//! dependency-free JSON writer) for EXPERIMENTS.md bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scale;

use mmt_telemetry::json::{self, JsonObject};
use std::io::Write;
use std::path::Path;

/// A rendered table: title, column headers, and stringified rows.
#[derive(Debug, Clone)]
pub struct TextTable {
    /// Table title (e.g. "E1 — flow-completion time").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render as a JSON object (`title`, `columns`, `rows`).
    pub fn to_json(&self) -> String {
        let quote = |s: &str| format!("\"{}\"", json::escape(s));
        let columns = json::array(self.columns.iter().map(|c| quote(c)).collect::<Vec<_>>());
        let rows = json::array(
            self.rows
                .iter()
                .map(|row| json::array(row.iter().map(|c| quote(c)).collect::<Vec<_>>()))
                .collect::<Vec<_>>(),
        );
        JsonObject::new()
            .str("title", &self.title)
            .raw("columns", &columns)
            .raw("rows", &rows)
            .finish()
    }

    /// Also persist as JSON under `dir/<slug>.json` (slug from the title).
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let path = dir.join(format!("{slug}.json"));
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(())
    }
}

/// Format a gigabit rate with 2 decimals.
pub fn gbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e9)
}

/// Format a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        // Leading blank line, title, blank, header, rule, rows.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1], "## demo");
        assert!(lines[3].starts_with("name     "), "{:?}", lines[3]);
        assert!(lines[5].starts_with("a        "), "{:?}", lines[5]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_rendering() {
        let mut t = TextTable::new("t\"x", &["a"]);
        t.row(vec!["1".into()]);
        assert_eq!(
            t.to_json(),
            "{\"title\":\"t\\\"x\",\"columns\":[\"a\"],\"rows\":[[\"1\"]]}"
        );
    }

    #[test]
    fn json_slug_and_write() {
        let dir = std::env::temp_dir().join("mmt_bench_test_json");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = TextTable::new("E1 — flow-completion time", &["x"]);
        t.row(vec!["1".into()]);
        t.write_json(&dir).unwrap();
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let name = entries[0].as_ref().unwrap().file_name();
        assert!(name.to_string_lossy().starts_with("e1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(gbps(5.4e9), "5.40");
        assert_eq!(pct(0.123), "12.30%");
    }
}
