//! # `mmt` — Multi-modal Transport for Integrated Research Infrastructure
//!
//! A full software reproduction of *"Shape-shifting Elephants: Multi-modal
//! Transport for Integrated Research Infrastructure"* (HotNets '24): a
//! transport protocol for Data-Acquisition (DAQ) elephant flows whose
//! feature set — retransmission, age tracking, delivery deadlines, pacing,
//! backpressure, duplication — is activated and re-configured *by the
//! network itself* as a stream crosses network segments.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof so examples and downstream users need a single dependency.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`wire`] | `mmt-wire` | Ethernet/IPv4/UDP + the MMT header and DAQ record formats |
//! | [`netsim`] | `mmt-netsim` | deterministic discrete-event network simulator |
//! | [`dataplane`] | `mmt-dataplane` | P4-style match-action elements and mode-transition programs |
//! | [`daq`] | `mmt-daq` | LArTPC detector model, physics events, Table 1 workloads |
//! | [`transport`] | `mmt-transport` | tuned-TCP and UDP baselines |
//! | [`protocol`] | `mmt-core` | MMT endpoints, buffers, mode planner |
//! | [`pilot`] | `mmt-pilot` | the Fig. 4 pilot and the experiment suite |
//! | [`telemetry`] | `mmt-telemetry` | metric registry, flow-correlated tracing, exporters |
//! | [`io`] | `mmt-io` | real-time UDP driver for the same sans-io machines: poll loop, RTO, watchdogs, socket fault injection |
//!
//! ## Quickstart
//!
//! ```
//! use mmt::pilot::{Pilot, PilotConfig};
//! use mmt::netsim::Time;
//!
//! let mut pilot = Pilot::build(PilotConfig::default_run());
//! pilot.run(Time::from_secs(30));
//! let report = pilot.report();
//! assert!(pilot.is_complete());
//! assert_eq!(report.receiver.lost, 0); // NAK recovery filled every gap
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mmt_daq as daq;
pub use mmt_dataplane as dataplane;
pub use mmt_io as io;
pub use mmt_netsim as netsim;
pub use mmt_pilot as pilot;
pub use mmt_telemetry as telemetry;
pub use mmt_transport as transport;
pub use mmt_wire as wire;

/// The multi-modal transport protocol endpoints and in-network buffers
/// (re-export of `mmt-core`; named `protocol` to avoid clashing with the
/// `core` language prelude).
pub use mmt_core as protocol;
