//! `mmt-sim` — run pilot-style scenarios from the command line.
//!
//! ```sh
//! cargo run --release --bin mmt-sim -- pilot --rtt-ms 50 --loss 1e-3 --messages 5000
//! cargo run --release --bin mmt-sim -- fct --loss 1e-3 --mb 50
//! cargo run --release --bin mmt-sim -- hol --loss 5e-3
//! cargo run --release --bin mmt-sim -- --help
//! ```
//!
//! A thin front-end over `mmt::pilot`: the same experiment code the test
//! suite and the `tables` harness run, with the knobs exposed. (Argument
//! parsing is hand-rolled to keep the dependency set at the workspace
//! baseline.)

#![forbid(unsafe_code)]

use mmt::netsim::{Bandwidth, FaultSpec, LossModel, PeriodicOutage, Time};
use mmt::pilot::experiments::{failover, fct, hol};
use mmt::pilot::{Pilot, PilotConfig};
use mmt::protocol::ModeController;
use mmt_bench::scale::{self, ScaleBenchConfig};
use std::collections::HashMap;

fn usage() -> ! {
    eprintln!(
        "usage: mmt-sim <command> [--key value ...]\n\
         \n\
         commands:\n\
         \x20 pilot   run the Fig. 4 pilot      [--rtt-ms N] [--loss P] [--messages N]\n\
         \x20         [--gbps N] [--deadline-ms N] [--seed N]\n\
         \x20         [--metrics-out FILE]      Prometheus text exposition of every counter\n\
         \x20         [--trace-out FILE]        per-packet event trace\n\
         \x20         [--trace-format F]        chrome (default; chrome://tracing / Perfetto) or jsonl\n\
         \x20         [--trace-cap N]           keep only the last N trace events (ring buffer)\n\
         \x20         [--series-out FILE]       per-interval time-series JSONL (virtual time)\n\
         \x20         [--series-interval-us N]  sampling interval in µs (default 1000; ≥ 1)\n\
         \x20         [--flight-out FILE]       flight-recorder dump path; written when a node\n\
         \x20                                   crashes, packets are lost, the run is\n\
         \x20                                   incomplete, or the sim panics\n\
         \x20         [--flight-cap N]          flight ring capacity (default 4096; ≥ 1)\n\
         \x20         fault injection on the WAN crossing (both directions):\n\
         \x20         [--reorder P]             reorder probability in [0,1]\n\
         \x20         [--reorder-delay-us N]    max extra delay for reordered packets\n\
         \x20         [--dup P]                 duplication probability in [0,1]\n\
         \x20         [--dup-delay-us N]        lag before the duplicate copy\n\
         \x20         [--jitter-us N]           uniform per-packet jitter bound\n\
         \x20         [--flap-period-ms N]      scheduled outage period (with --flap-down-ms)\n\
         \x20         [--flap-down-ms N]        outage length per period\n\
         \x20         [--nak-loss P]            control-plane (NAK/notify) loss in [0,1]\n\
         \x20         crash / failover (E13-style):\n\
         \x20         [--crash-node NAME]       crash a node mid-run (sensor|dtn1|standby|\n\
         \x20                                   tofino2|dtn2-nic|dtn2-host)\n\
         \x20         [--crash-at MS]           crash time in ms (requires --crash-node)\n\
         \x20         [--restart-at MS]         restart time in ms (must be > --crash-at)\n\
         \x20         [--adapt 0|1]             closed-loop mode adaptation; adds the standby\n\
         \x20                                   retransmission buffer to the topology\n\
         \x20 fct     E1 flow-completion sweep  [--loss P] [--mb N] [--rtt1-ms N] [--rtt2-ms N] [--seed N]\n\
         \x20 hol     E2 head-of-line compare   [--loss P] [--rtt-ms N] [--messages N] [--seed N]\n\
         \x20 failover E13 crash failover      [--loss P] [--messages N] [--seed N]\n\
         \x20         [--crash-at MS] [--restart-at MS]\n\
         \x20 bench   many-flow scale bench    [--sensors K] [--packets N] [--seed N]\n\
         \x20         [--shards LIST]           comma-separated shard counts (default 1,2,4;\n\
         \x20                                   first entry is the speedup baseline)\n\
         \x20         [--quick 0|1]             CI smoke shape (K=256, 4 packets/sensor)\n\
         \x20         [--scheduler heap|wheel]  restrict the event-scheduler sweep to one\n\
         \x20                                   implementation (default: both, with digest\n\
         \x20                                   equality enforced across them)\n\
         \x20         [--profile 0|1]           hot-path span profiler override (default:\n\
         \x20                                   on for the full shape, off for --quick 1);\n\
         \x20                                   when on, exits 1 if link_delivery attributes\n\
         \x20                                   zero events (dead-profile smoke)\n\
         \x20         [--budget FILE]           per-flow RSS budget file; exits 1 if any\n\
         \x20                                   measured peak_rss_per_flow_bytes exceeds its\n\
         \x20                                   budgeted cell by more than 10%\n\
         \x20         [--out FILE]              JSON report path (default BENCH_scale.json)\n\
         \x20         memory ladder runs first (ascending K; explicit --sensors K measures\n\
         \x20         K/10 and K) and records peak_rss_per_flow_bytes per cell\n\
         \x20 io-pilot sender→DTN→receiver over real UDP sockets (sans-io core,\n\
         \x20         real time). Default: both endpoints in-process over loopback.\n\
         \x20         [--listen ADDR]           run only the receiving half, bound to ADDR\n\
         \x20         [--connect ADDR]          run only the sending half, aimed at ADDR\n\
         \x20         [--messages N]            messages to send (default 200; ≥ 1)\n\
         \x20         [--len N]                 payload bytes per message (default 1024; ≥ 8)\n\
         \x20         [--gap-us N]              send pacing gap in µs (default 50)\n\
         \x20         [--loss P]                injected drop probability on the data path\n\
         \x20         [--dup P]                 injected duplication probability\n\
         \x20         [--delay-us N]            injected fixed delay in µs\n\
         \x20         [--seed N]                fault-injector seed (default 1)\n\
         \x20         [--rto-min-us N]          RTO floor in µs (default 5000; ≥ 1)\n\
         \x20         [--rto-max-us N]          RTO ceiling in µs (default 500000)\n\
         \x20         [--nak-retries N]         per-sequence NAK retry budget (default 16; ≥ 1)\n\
         \x20         [--deadline-us N]         flow deadline in µs (default 2000000; ≥ 1);\n\
         \x20                                   drives the shed→degrade→abort watchdog\n\
         \x20         [--metrics-out FILE]      Prometheus text exposition of the run\n\
         \x20         [--flight-out FILE]       flight-recorder dump path (always written on\n\
         \x20                                   watchdog abort; on success with the flag set)\n\
         \x20         [--flight-cap N]          flight ring capacity (default 4096; ≥ 1)\n\
         \x20         exit: 0 delivered exactly once; 3 watchdog abort (flight dumped);\n\
         \x20         4 degraded (losses accounted, no hang)"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].trim_start_matches("--").to_string();
        if !args[i].starts_with("--") || i + 1 >= args.len() {
            eprintln!("bad flag syntax near {:?}", args[i]);
            usage();
        }
        flags.insert(key, args[i + 1].clone());
        i += 2;
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("could not parse --{key} {raw}");
            std::process::exit(2);
        }),
    }
}

/// Parse a probability flag, insisting on a finite value in [0, 1].
fn get_prob(flags: &HashMap<String, String>, key: &str) -> f64 {
    let p: f64 = get(flags, key, 0.0);
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        eprintln!("--{key} must be a probability in [0, 1], got {p}");
        std::process::exit(2);
    }
    p
}

/// Assemble the WAN fault spec from the pilot fault flags.
fn parse_fault(flags: &HashMap<String, String>) -> FaultSpec {
    let mut fault = FaultSpec::none();
    let reorder = get_prob(flags, "reorder");
    if reorder > 0.0 {
        fault = fault.with_reorder(
            reorder,
            Time::from_micros(get(flags, "reorder-delay-us", 500u64)),
        );
    }
    let dup = get_prob(flags, "dup");
    if dup > 0.0 {
        fault = fault.with_duplication(dup, Time::from_micros(get(flags, "dup-delay-us", 50u64)));
    }
    let jitter = get(flags, "jitter-us", 0u64);
    if jitter > 0 {
        fault = fault.with_jitter(Time::from_micros(jitter));
    }
    let flap_period = get(flags, "flap-period-ms", 0u64);
    let flap_down = get(flags, "flap-down-ms", 0u64);
    if (flap_period == 0) != (flap_down == 0) {
        eprintln!("--flap-period-ms and --flap-down-ms must be given together");
        std::process::exit(2);
    }
    if flap_period > 0 {
        if flap_down >= flap_period {
            eprintln!(
                "--flap-down-ms ({flap_down}) must be shorter than --flap-period-ms ({flap_period})"
            );
            std::process::exit(2);
        }
        fault = fault.with_scheduled_outage(PeriodicOutage {
            first_down: Time::from_millis(flap_period - flap_down),
            down_for: Time::from_millis(flap_down),
            period: Time::from_millis(flap_period),
        });
    }
    let nak_loss = get_prob(flags, "nak-loss");
    if nak_loss > 0.0 {
        fault = fault.with_control_loss(nak_loss);
    }
    fault
}

/// The pilot node names `--crash-node` accepts (`standby` only exists
/// with `--adapt 1`).
const CRASH_NODES: [&str; 6] = [
    "sensor",
    "dtn1",
    "standby",
    "tofino2",
    "dtn2-nic",
    "dtn2-host",
];

/// Parse and validate the crash / adaptation flags into `cfg`. Returns
/// whether the closed-loop controller should drive the run.
fn parse_crash(flags: &HashMap<String, String>, cfg: &mut PilotConfig) -> bool {
    let adapt = match flags.get("adapt").map(String::as_str) {
        None | Some("0") => false,
        Some("1") => true,
        Some(other) => {
            eprintln!("--adapt must be 0 or 1, got {other}");
            std::process::exit(2);
        }
    };
    if adapt {
        // The controller re-homes to the standby buffer; it must exist.
        cfg.standby = true;
    }
    match flags.get("crash-node") {
        Some(node) => {
            if !CRASH_NODES.contains(&node.as_str()) {
                eprintln!(
                    "--crash-node {node} is not a pilot node (expected one of {})",
                    CRASH_NODES.join("|")
                );
                std::process::exit(2);
            }
            if node == "standby" && !cfg.standby {
                eprintln!("--crash-node standby requires --adapt 1 (no standby in the topology)");
                std::process::exit(2);
            }
            let crash_ms: u64 = get(flags, "crash-at", 6u64);
            let restart_ms: Option<u64> = flags
                .get("restart-at")
                .map(|_| get(flags, "restart-at", 0u64));
            if let Some(r) = restart_ms {
                if r <= crash_ms {
                    eprintln!(
                        "--restart-at ({r} ms) must be later than --crash-at ({crash_ms} ms)"
                    );
                    std::process::exit(2);
                }
            }
            cfg.crash_node = Some(node.clone());
            cfg.crash_at = Time::from_millis(crash_ms);
            cfg.restart_at = restart_ms.map(Time::from_millis);
        }
        None => {
            if flags.contains_key("crash-at") || flags.contains_key("restart-at") {
                eprintln!("--crash-at/--restart-at require --crash-node");
                std::process::exit(2);
            }
        }
    }
    adapt
}

fn cmd_pilot(flags: HashMap<String, String>) {
    let mut cfg = PilotConfig::default_run();
    cfg.wan_rtt = Time::from_millis(get(&flags, "rtt-ms", 10u64));
    cfg.wan_loss = LossModel::Random(get(&flags, "loss", 1e-3f64));
    cfg.message_count = get(&flags, "messages", 2_000usize);
    cfg.wan_bandwidth = Bandwidth::gbps(get(&flags, "gbps", 100u64));
    cfg.deadline_budget = Time::from_millis(get(&flags, "deadline-ms", 50u64));
    cfg.max_age = cfg.deadline_budget;
    cfg.seed = get(&flags, "seed", 7u64);
    cfg.wan_fault = parse_fault(&flags);
    let adapt = parse_crash(&flags, &mut cfg);
    if !cfg.wan_fault.is_none() || cfg.crash_node.is_some() {
        // Defensive defaults under injected faults: space out retransmits
        // of the same sequence (below the NAK retry interval).
        cfg.retx_holdoff = Time::from_millis(2);
    }
    println!(
        "pilot: {} msgs, {} WAN, rtt {}, loss {:?}, deadline {}",
        cfg.message_count, cfg.wan_bandwidth, cfg.wan_rtt, cfg.wan_loss, cfg.deadline_budget
    );
    let cfg_fault_none = cfg.wan_fault.is_none();
    if !cfg_fault_none {
        println!("faults: {:?}", cfg.wan_fault);
    }
    if let Some(node) = &cfg.crash_node {
        match cfg.restart_at {
            Some(r) => println!("crash: {node} down at {}, restarts at {r}", cfg.crash_at),
            None => println!("crash: {node} down at {} (no restart)", cfg.crash_at),
        }
    }
    if adapt {
        println!("adaptation: closed-loop controller, standby buffer armed");
    }
    let metrics_out = flags.get("metrics-out").cloned();
    let trace_out = flags.get("trace-out").cloned();
    let trace_format = flags
        .get("trace-format")
        .map_or("chrome", String::as_str)
        .to_string();
    if !matches!(trace_format.as_str(), "chrome" | "jsonl") {
        eprintln!("--trace-format must be chrome or jsonl, got {trace_format}");
        std::process::exit(2);
    }
    // Validate eagerly so a bad cap errors even without --trace-out.
    let trace_cap = flags.get("trace-cap").map(|raw| {
        let cap: usize = raw.parse().unwrap_or_else(|_| {
            eprintln!("could not parse --trace-cap {raw}");
            std::process::exit(2);
        });
        if cap == 0 {
            eprintln!("--trace-cap must be at least 1");
            std::process::exit(2);
        }
        cap
    });
    // Streaming observability flags. Validated eagerly so a bad value
    // errors before any simulation work.
    let series_out = flags.get("series-out").cloned();
    let series_interval_us: u64 = get(&flags, "series-interval-us", 1000u64);
    if series_interval_us == 0 {
        eprintln!("--series-interval-us must be at least 1");
        std::process::exit(2);
    }
    if flags.contains_key("series-interval-us") && series_out.is_none() {
        eprintln!("--series-interval-us requires --series-out");
        std::process::exit(2);
    }
    let flight_out = flags.get("flight-out").cloned();
    let flight_cap: usize = get(&flags, "flight-cap", 4096usize);
    if flight_cap == 0 {
        eprintln!("--flight-cap must be at least 1");
        std::process::exit(2);
    }
    if flags.contains_key("flight-cap") && flight_out.is_none() {
        eprintln!("--flight-cap requires --flight-out");
        std::process::exit(2);
    }
    // Both sinks are written at (or after) the end of the run — too late
    // for a helpful error — so check the parent directory up front.
    for (flag, path) in [("series-out", &series_out), ("flight-out", &flight_out)] {
        if let Some(path) = path {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() && !dir.is_dir() {
                    eprintln!("--{flag} parent directory {} does not exist", dir.display());
                    std::process::exit(2);
                }
            }
        }
    }
    let crash_armed = cfg.crash_node.is_some();
    let mut pilot = Pilot::build(cfg);
    if trace_out.is_some() {
        match trace_cap {
            Some(cap) => pilot.enable_trace_bounded(cap),
            None => pilot.enable_trace(),
        }
    } else if flight_out.is_some() {
        // The flight recorder needs trace records to dump; arm a bounded
        // ring so a long run keeps only the most recent events.
        pilot.enable_trace_bounded(flight_cap);
    }
    if series_out.is_some() {
        pilot.enable_series(Time::from_micros(series_interval_us));
    }
    let run_outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if adapt {
            let mut controller = ModeController::new(failover::controller_config());
            let applied =
                pilot.run_adaptive(Time::from_secs(300), Time::from_millis(5), &mut controller);
            let s = controller.stats();
            println!(
                "adaptation: {applied} transitions applied (degrade {}, recover {}, rehome {}, shed {}, unshed {})",
                s.degrades, s.recovers, s.rehomes, s.sheds, s.unsheds
            );
        } else {
            pilot.run(Time::from_secs(300));
        }
    }));
    if run_outcome.is_err() {
        if let Some(path) = &flight_out {
            match std::fs::write(path, pilot.flight_dump("panic")) {
                Ok(()) => eprintln!("flight recorder dump (panic) written to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        std::process::exit(101);
    }
    let mut r = pilot.report();
    println!(
        "delivered {}/{}  naks {}  recovered {}  lost {}  aged {}  notify {}",
        r.receiver.delivered,
        r.sender.sent,
        r.receiver.naks_sent,
        r.receiver.recovered,
        r.receiver.lost,
        r.receiver.aged_deliveries,
        r.sender.deadline_notifications,
    );
    if !cfg_fault_none {
        println!(
            "fault hits: flap {}+{}  ctrl-drop {}  dup {}  reorder {}",
            r.wan_flap_drops,
            r.wan_rev_flap_drops,
            r.wan_rev_control_drops,
            r.wan_dup_injected,
            r.wan_reordered,
        );
    }
    if let Some(sb) = &r.standby {
        println!(
            "standby: tapped {}  naks seen {}  served {}  activations {}",
            sb.tapped, sb.naks_seen, sb.served, sb.activations
        );
    }
    if let Some((addr, port)) = r.receiver_retransmit_source {
        println!("receiver retransmit source: {addr}:{port}");
    }
    if let (Some(p50), Some(p99)) = (r.latency.median(), r.latency.quantile(0.99)) {
        println!("latency p50 {p50}  p99 {p99}");
    }
    match r.completed_at {
        Some(t) => println!("completed at {t}"),
        None => println!("INCOMPLETE within horizon"),
    }
    if let Some(path) = metrics_out {
        let text = mmt::telemetry::prometheus::render(&pilot.metrics());
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("metrics written to {path}");
    }
    if let Some(path) = trace_out {
        let records = pilot.trace_records();
        let text = match trace_format.as_str() {
            "chrome" => mmt::telemetry::trace::to_chrome_trace(&records),
            _ => mmt::telemetry::trace::to_jsonl(&records),
        };
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "trace ({} events, {trace_format}) written to {path}",
            records.len()
        );
    }
    if let Some(path) = series_out {
        let rows = pilot.take_series();
        if let Err(e) = std::fs::write(&path, mmt::telemetry::series::to_jsonl(&rows)) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("series ({} rows) written to {path}", rows.len());
    }
    if let Some(path) = flight_out {
        // First tripped trigger wins, most severe first.
        let reason = if crash_armed {
            Some("node_crash")
        } else if r.receiver.lost > 0 {
            Some("packets_lost")
        } else if r.completed_at.is_none() {
            Some("incomplete")
        } else {
            None
        };
        match reason {
            Some(reason) => {
                if let Err(e) = std::fs::write(&path, pilot.flight_dump(reason)) {
                    eprintln!("could not write {path}: {e}");
                    std::process::exit(1);
                }
                println!("flight recorder dump ({reason}) written to {path}");
            }
            None => println!("flight recorder armed; no trigger tripped"),
        }
    }
}

fn cmd_fct(flags: HashMap<String, String>) {
    let params = fct::FctParams {
        rtt1: Time::from_millis(get(&flags, "rtt1-ms", 40u64)),
        rtt2: Time::from_millis(get(&flags, "rtt2-ms", 20u64)),
        loss: get(&flags, "loss", 1e-3f64),
        transfer_bytes: get(&flags, "mb", 100u64) * 1_000_000,
        bandwidth: Bandwidth::gbps(get(&flags, "gbps", 100u64)),
        seed: get(&flags, "seed", 11u64),
    };
    println!(
        "E1: {} MB over {}+{} WAN, loss {} on far hop",
        params.transfer_bytes / 1_000_000,
        params.rtt1,
        params.rtt2,
        params.loss
    );
    for r in fct::run_all(&params) {
        println!(
            "{:<26} FCT {:<12} retx {:<6} losses {:<6} complete {}",
            r.variant.name(),
            r.fct.to_string(),
            r.retransmissions,
            r.wire_losses,
            r.completed
        );
    }
}

fn cmd_hol(flags: HashMap<String, String>) {
    let params = hol::HolParams {
        rtt: Time::from_millis(get(&flags, "rtt-ms", 20u64)),
        loss: get(&flags, "loss", 5e-3f64),
        messages: get(&flags, "messages", 20_000usize),
        gap: Time::from_micros(10),
        seed: get(&flags, "seed", 21u64),
    };
    println!(
        "E2: {} messages, rtt {}, loss {}",
        params.messages, params.rtt, params.loss
    );
    for mut r in hol::run_all(&params) {
        println!(
            "{:<18} p50 {:<12} p99 {:<12} impacted {:.2}%  delivered {}",
            r.variant,
            r.latency
                .median()
                .map(|t| t.to_string())
                .unwrap_or_default(),
            r.latency
                .quantile(0.99)
                .map(|t| t.to_string())
                .unwrap_or_default(),
            r.impacted_fraction * 100.0,
            r.delivered
        );
    }
}

fn cmd_failover(flags: HashMap<String, String>) {
    let mut p = failover::FailoverParams::default_run();
    p.messages = get(&flags, "messages", p.messages);
    p.loss = get(&flags, "loss", p.loss);
    p.seed = get(&flags, "seed", p.seed);
    let crash_ms: u64 = get(&flags, "crash-at", 6u64);
    p.crash_at = Time::from_millis(crash_ms);
    if flags.contains_key("restart-at") {
        let r: u64 = get(&flags, "restart-at", 0u64);
        if r <= crash_ms {
            eprintln!("--restart-at ({r} ms) must be later than --crash-at ({crash_ms} ms)");
            std::process::exit(2);
        }
        p.restart_at = Some(Time::from_millis(r));
    }
    println!(
        "E13: {} msgs, loss {}, dtn1 crash at {} (seed {})",
        p.messages, p.loss, p.crash_at, p.seed
    );
    for r in failover::run_all(&p) {
        println!(
            "{:<10} complete {:<5} delivered {:<6} lost {:<4} exhausted {:<4} rehomed {:<5} \
             standby-served {:<5} transitions {:<3} recovery {}",
            r.name,
            r.complete,
            r.delivered,
            r.lost,
            r.nak_retries_exhausted,
            r.rehomed,
            r.standby_served,
            r.transitions,
            r.recovery_latency
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
}

fn cmd_bench(flags: HashMap<String, String>) {
    let quick = match flags.get("quick").map(String::as_str) {
        None | Some("0") => false,
        Some("1") => true,
        Some(other) => {
            eprintln!("--quick must be 0 or 1, got {other}");
            std::process::exit(2);
        }
    };
    // --profile is an override, not the source of truth: absent, the
    // shape's default stands (full profiles so BENCH_scale.json always
    // attributes stages; quick stays cheap for CI smoke).
    let profile = match flags.get("profile").map(String::as_str) {
        None => None,
        Some("0") => Some(false),
        Some("1") => Some(true),
        Some(other) => {
            eprintln!("--profile must be 0 or 1, got {other}");
            std::process::exit(2);
        }
    };
    let mut cfg = if quick {
        ScaleBenchConfig::quick()
    } else {
        ScaleBenchConfig::full()
    };
    if let Some(p) = profile {
        cfg.profile = p;
    }
    cfg.sensors = get(&flags, "sensors", cfg.sensors);
    cfg.packets_per_sensor = get(&flags, "packets", cfg.packets_per_sensor);
    cfg.seed = get(&flags, "seed", cfg.seed);
    if cfg.sensors == 0 || cfg.packets_per_sensor == 0 {
        eprintln!("--sensors and --packets must be ≥ 1");
        std::process::exit(2);
    }
    if flags.contains_key("sensors") {
        // An explicit fleet size retargets the memory ladder too: a rung
        // one decade down plus the target K.
        let k = cfg.sensors;
        cfg = cfg.with_memory_sensors(vec![(k / 10).max(1), k]);
    }
    match flags.get("scheduler").map(String::as_str) {
        None => {}
        Some(s @ ("heap" | "wheel")) => cfg = cfg.with_scheduler(s),
        Some(other) => {
            eprintln!("--scheduler must be heap or wheel, got {other}");
            std::process::exit(2);
        }
    }
    if let Some(raw) = flags.get("shards") {
        let parsed: Result<Vec<usize>, _> = raw.split(',').map(str::parse).collect();
        match parsed {
            Ok(list) if !list.is_empty() && list.iter().all(|&s| s >= 1) => {
                cfg.shard_counts = list;
            }
            _ => {
                eprintln!("--shards must be a comma-separated list of counts ≥ 1, got {raw}");
                std::process::exit(2);
            }
        }
    }
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    println!(
        "scale bench: {} sensors × {} packets, shards {:?}, schedulers {:?}, seed {}",
        cfg.sensors, cfg.packets_per_sensor, cfg.shard_counts, cfg.schedulers, cfg.seed
    );
    let result = scale::run(&cfg);
    for r in &result.rows {
        println!(
            "{:<5} shards {:<3} wall {:>9.3} ms  {:>12.0} pkt/s  {:>12.0} ev/s  speedup {:>5.2}x  \
             digest {:016x}  util {:?}",
            r.scheduler,
            r.shards,
            r.wall_ns as f64 / 1e6,
            r.packets_per_sec,
            r.events_per_sec,
            r.speedup,
            r.digest,
            r.shard_utilization
                .iter()
                .map(|u| (u * 100.0).round() / 100.0)
                .collect::<Vec<f64>>(),
        );
    }
    for cell in &result.memory {
        println!(
            "memory K={:<8} peak RSS {:>9} kB  peak_rss_per_flow_bytes {}",
            cell.sensors, cell.peak_rss_kb, cell.peak_rss_per_flow_bytes
        );
    }
    if cfg.profile {
        println!("hot-path span profile (baseline run):");
        let mut link_delivery_events = 0u64;
        for (stage, events, vtime_ns) in result.profile.rows() {
            println!("  {stage:<18} events {events:>10}  vtime {vtime_ns:>14} ns");
            if stage == "link_delivery" {
                link_delivery_events = events;
            }
        }
        if link_delivery_events == 0 {
            eprintln!(
                "PROFILE SMOKE FAILURE: link_delivery attributed 0 events — stage \
                 attribution is dead (every delivered packet must cross a link)"
            );
            std::process::exit(1);
        }
    }
    if let Some(path) = flags.get("budget") {
        match std::fs::read_to_string(path) {
            Ok(text) => match scale::check_budget(&result.memory, &text) {
                Ok(()) => println!("per-flow RSS within budget ({path})"),
                Err(e) => {
                    eprintln!("PER-FLOW RSS BUDGET EXCEEDED: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("could not read budget file {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "peak RSS {} kB; {} host core(s) (worker threads clamp to min(shards, cores))",
        result.peak_rss_kb, result.host_cores
    );
    println!(
        "latency-sample RSS honesty: sketch {} kB, exact {} kB, delta {} kB",
        result.peak_rss_sketch_kb, result.peak_rss_exact_kb, result.rss_delta_kb
    );
    if !result.deterministic() {
        eprintln!("DETERMINISM VIOLATION: digests diverged across shard counts or schedulers");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out, result.to_json() + "\n") {
        eprintln!("could not write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "deterministic across shard counts and schedulers; best speedup {:.2}x; report written to {out}",
        result.best_speedup()
    );
}

fn cmd_io_pilot(flags: HashMap<String, String>) {
    use mmt::io::{run_connect, run_listen, run_loopback, IoError, IoPilotConfig};

    let mut cfg = IoPilotConfig::defaults();
    cfg.messages = get(&flags, "messages", 200u64);
    if cfg.messages == 0 {
        eprintln!("--messages must be at least 1");
        std::process::exit(2);
    }
    cfg.message_len = get(&flags, "len", 1024usize);
    if cfg.message_len < 8 {
        eprintln!("--len must be at least 8 (the payload carries its index)");
        std::process::exit(2);
    }
    cfg.gap = Time::from_micros(get(&flags, "gap-us", 50u64));
    cfg.loss = get_prob(&flags, "loss");
    cfg.dup = get_prob(&flags, "dup");
    cfg.delay = Time::from_micros(get(&flags, "delay-us", 0u64));
    cfg.seed = get(&flags, "seed", 1u64);
    let rto_min_us: u64 = get(&flags, "rto-min-us", 5_000u64);
    if rto_min_us == 0 {
        eprintln!("--rto-min-us must be at least 1");
        std::process::exit(2);
    }
    cfg.rto_min = Time::from_micros(rto_min_us);
    cfg.rto_max = Time::from_micros(get(&flags, "rto-max-us", 500_000u64)).max(cfg.rto_min);
    cfg.nak_retries = get(&flags, "nak-retries", 16u32);
    if cfg.nak_retries == 0 {
        eprintln!("--nak-retries must be at least 1");
        std::process::exit(2);
    }
    let deadline_us: u64 = get(&flags, "deadline-us", 2_000_000u64);
    if deadline_us == 0 {
        eprintln!("--deadline-us must be at least 1");
        std::process::exit(2);
    }
    cfg.deadline = Time::from_micros(deadline_us);
    cfg.flight_cap = get(&flags, "flight-cap", 4096usize);
    if cfg.flight_cap == 0 {
        eprintln!("--flight-cap must be at least 1");
        std::process::exit(2);
    }
    let listen = flags.get("listen").cloned();
    let connect = flags.get("connect").cloned();
    if listen.is_some() && connect.is_some() {
        eprintln!("--listen and --connect are mutually exclusive");
        std::process::exit(2);
    }
    // Validate addresses eagerly so a typo errors before sockets open.
    for (flag, addr) in [("listen", &listen), ("connect", &connect)] {
        if let Some(addr) = addr {
            if addr.parse::<std::net::SocketAddr>().is_err() {
                eprintln!("--{flag} expects IP:PORT, got {addr}");
                std::process::exit(2);
            }
        }
    }
    let metrics_out = flags.get("metrics-out").cloned();
    let flight_out = flags.get("flight-out").cloned();
    for (flag, path) in [("metrics-out", &metrics_out), ("flight-out", &flight_out)] {
        if let Some(path) = path {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() && !dir.is_dir() {
                    eprintln!("--{flag} parent directory {} does not exist", dir.display());
                    std::process::exit(2);
                }
            }
        }
    }

    let role = match (&listen, &connect) {
        (Some(addr), _) => format!("listen {addr}"),
        (_, Some(addr)) => format!("connect {addr}"),
        _ => "loopback".to_string(),
    };
    println!(
        "io-pilot ({role}): {} msgs × {} B, gap {}, loss {}, dup {}, delay {}, rto-min {}, deadline {}",
        cfg.messages, cfg.message_len, cfg.gap, cfg.loss, cfg.dup, cfg.delay, cfg.rto_min, cfg.deadline
    );

    let result = match (&listen, &connect) {
        (Some(addr), _) => run_listen(&cfg, addr),
        (_, Some(addr)) => run_connect(&cfg, addr),
        _ => run_loopback(&cfg),
    };
    let report = match result {
        Ok(report) => report,
        Err(IoError::WatchdogAbort { flight, elapsed_ns }) => {
            eprintln!(
                "io-pilot: watchdog abort after {}",
                Time::from_nanos(elapsed_ns)
            );
            match &flight_out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &flight) {
                        eprintln!("could not write --flight-out {path}: {e}");
                    } else {
                        println!("flight dump: {path}");
                    }
                }
                None => eprintln!("{flight}"),
            }
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("io-pilot: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "sent {} | delivered {}/{} (dups suppressed {}) | naks {} recovered {} lost {} (budget-exhausted {})",
        report.sent,
        report.delivered,
        report.messages,
        report.duplicates,
        report.naks_sent,
        report.recovered,
        report.lost,
        report.nak_retries_exhausted,
    );
    println!(
        "elapsed {} | srtt {} | rto {} ({} samples) | watchdog {} | faults: dropped {} duplicated {} delayed {}",
        report.elapsed,
        Time::from_nanos(report.srtt_ns),
        Time::from_nanos(report.rto_ns),
        report.rto_samples,
        report.watchdog_stage.label(),
        report.faults.dropped,
        report.faults.duplicated,
        report.faults.delayed,
    );
    for (at, stage) in &report.watchdog_transitions {
        println!("  watchdog → {} at {}", stage.label(), at);
    }
    if let Some(path) = &metrics_out {
        let mut reg = mmt::telemetry::MetricRegistry::new();
        report.export_metrics(&mut reg);
        match std::fs::write(path, mmt::telemetry::prometheus::render(&reg)) {
            Ok(()) => println!("metrics: {path}"),
            Err(e) => {
                eprintln!("could not write --metrics-out {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &flight_out {
        let reason = if report.completed {
            "complete"
        } else {
            "degraded"
        };
        match std::fs::write(path, report.render_flight(reason)) {
            Ok(()) => println!("flight dump: {path}"),
            Err(e) => {
                eprintln!("could not write --flight-out {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    // The connect side cannot observe delivery; its success is having
    // drained the schedule and served every NAK until the line went
    // quiet. Everything else demands exactly-once delivery.
    let ok = if connect.is_some() {
        report.completed
    } else {
        report.completed && report.exactly_once()
    };
    if ok {
        println!("io-pilot: complete (exactly-once)");
    } else {
        println!("io-pilot: degraded — losses accounted, exiting nonzero");
        std::process::exit(4);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "pilot" => cmd_pilot(flags),
        "fct" => cmd_fct(flags),
        "hol" => cmd_hol(flags),
        "failover" => cmd_failover(flags),
        "bench" => cmd_bench(flags),
        "io-pilot" => cmd_io_pilot(flags),
        _ => usage(),
    }
}
