//! Socket-fault chaos for the real io plane: seeded drop, duplication,
//! and delay shapes over loopback. Every run must either complete with
//! exactly-once delivery before its deadline or degrade gracefully with
//! honest accounting (`lost`/`nak_retries_exhausted`), and no run may
//! hang — a harness timeout fails the test and prints the report (or
//! flight dump) of whatever did come back.

use std::sync::mpsc;
use std::time::Duration;

use mmt::io::{run_loopback, IoError, IoPilotConfig};
use mmt::netsim::Time;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Wall-clock ceiling per run, comfortably above the in-run 2 s deadline
/// so the deadline watchdog (not the harness) is what bounds a bad run.
const HARNESS_TIMEOUT: Duration = Duration::from_secs(20);

#[derive(Clone, Copy)]
struct Shape {
    name: &'static str,
    loss: f64,
    dup: f64,
    delay: Time,
}

const SHAPES: [Shape; 3] = [
    Shape {
        name: "drop5",
        loss: 0.05,
        dup: 0.0,
        delay: Time::ZERO,
    },
    Shape {
        name: "dup10",
        loss: 0.0,
        dup: 0.10,
        delay: Time::ZERO,
    },
    Shape {
        name: "delay10ms",
        loss: 0.0,
        dup: 0.0,
        delay: Time::from_millis(10),
    },
];

fn config(shape: &Shape, seed: u64) -> IoPilotConfig {
    let mut cfg = IoPilotConfig::defaults();
    cfg.messages = 150;
    cfg.message_len = 512;
    cfg.gap = Time::from_micros(20);
    cfg.loss = shape.loss;
    cfg.dup = shape.dup;
    cfg.delay = shape.delay;
    cfg.seed = seed;
    cfg.rto_min = Time::from_millis(2);
    cfg.deadline = Time::from_secs(2);
    cfg
}

/// Run one chaos cell on its own thread with a harness timeout, so a
/// hung poll loop fails the suite instead of wedging it.
fn run_cell(shape: &Shape, seed: u64) -> Result<mmt::io::IoPilotReport, IoError> {
    let cfg = config(shape, seed);
    let (tx, rx) = mpsc::channel();
    let label = format!("{}/seed{}", shape.name, seed);
    std::thread::spawn(move || {
        // A send failure means the harness already timed out and moved
        // on; nothing useful to do with the result.
        let _ = tx.send(run_loopback(&cfg));
    });
    match rx.recv_timeout(HARNESS_TIMEOUT) {
        Ok(result) => result,
        Err(_) => panic!(
            "{label}: io-pilot hung past the {HARNESS_TIMEOUT:?} harness timeout \
             (the in-run watchdog should have aborted at 2s)"
        ),
    }
}

#[test]
fn chaos_matrix_completes_or_degrades_gracefully() {
    for shape in &SHAPES {
        for seed in SEEDS {
            let label = format!("{}/seed{}", shape.name, seed);
            let report = match run_cell(shape, seed) {
                Ok(report) => report,
                Err(IoError::WatchdogAbort { flight, elapsed_ns }) => panic!(
                    "{label}: aborted at {elapsed_ns} ns under a mild fault shape;\nflight:\n{flight}"
                ),
                Err(e) => panic!("{label}: io error: {e}"),
            };
            if report.completed {
                assert!(
                    report.exactly_once(),
                    "{label}: completed but not exactly-once: {report:?}"
                );
                assert_eq!(report.delivered, 150, "{label}");
            } else {
                // Graceful degradation: every expected message accounted
                // for, with the abandonments attributed.
                assert_eq!(
                    report.delivered + report.lost,
                    150,
                    "{label}: degraded run must conserve accounting: {report:?}"
                );
                assert!(
                    report.lost > 0 && report.nak_retries_exhausted > 0,
                    "{label}: degraded run must attribute its losses: {report:?}"
                );
            }
            // Shape-specific sanity: the injector must actually have
            // exercised the configured fault at least once per run.
            if shape.loss > 0.0 {
                assert!(report.faults.dropped > 0, "{label}: no drops injected");
                assert!(
                    report.recovered > 0 || report.lost > 0,
                    "{label}: drops happened but nothing was recovered or accounted"
                );
            }
            if shape.dup > 0.0 {
                assert!(report.faults.duplicated > 0, "{label}: no dups injected");
                assert!(
                    report.duplicates > 0,
                    "{label}: duplicated datagrams never reached dedup"
                );
            }
            if shape.delay > Time::ZERO {
                assert!(report.faults.delayed > 0, "{label}: no delay applied");
                assert!(
                    report.elapsed >= shape.delay,
                    "{label}: finished before the injected delay elapsed"
                );
            }
        }
    }
}

#[test]
fn forced_watchdog_expiry_dumps_flight_and_errors() {
    // 100% loss with a short deadline: the ladder must walk
    // shed → degrade → abort and surface a flight dump, never hang.
    let mut cfg = IoPilotConfig::defaults();
    cfg.messages = 50;
    cfg.loss = 1.0;
    cfg.deadline = Time::from_millis(80);
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(run_loopback(&cfg));
    });
    match rx.recv_timeout(HARNESS_TIMEOUT) {
        Ok(Err(IoError::WatchdogAbort { flight, elapsed_ns })) => {
            assert!(flight.contains("\"flight\":\"v1\""));
            assert!(flight.contains("watchdog_abort"));
            assert!(flight.contains("io_watchdog_shed"));
            assert!(flight.contains("io_watchdog_degrade"));
            assert!(elapsed_ns >= Time::from_millis(80).as_nanos());
        }
        Ok(other) => panic!("expected watchdog abort, got {other:?}"),
        Err(_) => panic!("watchdog abort path hung past the harness timeout"),
    }
}

#[test]
fn chaos_is_seed_reproducible_where_timing_cannot_interfere() {
    // Under loss the recovery interleaving is wall-clock dependent, so
    // only accounting (not ordering) is stable run to run. The delay-only
    // shape has no recovery and a FIFO hold queue, so there the delivered
    // sequence itself must be identical across runs.
    let delay = &SHAPES[2];
    let a = run_cell(delay, 99).expect("run a");
    let b = run_cell(delay, 99).expect("run b");
    assert_eq!(a.faults.delayed, b.faults.delayed);
    assert_eq!(a.delivery_digest, b.delivery_digest);

    let lossy = &SHAPES[0];
    let c = run_cell(lossy, 99).expect("run c");
    let d = run_cell(lossy, 99).expect("run d");
    assert_eq!(
        c.delivered + c.lost,
        d.delivered + d.lost,
        "lossy runs must conserve the same total regardless of timing"
    );
}
