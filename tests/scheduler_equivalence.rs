//! Differential scheduler equivalence: the timing wheel that replaced
//! the binary heap must be *observationally identical* — not merely
//! "close". Every digest the harness can produce (Prometheus text,
//! trace digests, series JSONL) must be byte-equal between
//! `Simulator::with_heap_scheduler()` and the default wheel, across
//! seeds, shard counts, and forced worker layouts.
//!
//! The heap survives one release solely as the reference engine for
//! this suite; see DESIGN.md §12 for the removal plan.

use mmt::netsim::{FaultSpec, PeriodicOutage, ShardedSim, Time};
use mmt::pilot::manyflow::{self, ManyFlowConfig};
use mmt::pilot::{Pilot, PilotConfig};
use mmt::telemetry::{prometheus, series};

/// Everything observable from one many-flow fleet run.
fn fleet_outputs(seed: u64, shards: usize, workers: usize, heap: bool) -> (String, u64, String) {
    let mut cfg = ManyFlowConfig::quick(seed)
        .with_shards(shards)
        .with_series(Time::from_micros(100));
    if heap {
        cfg = cfg.with_heap_scheduler();
    }
    let groups = cfg.dtns;
    let sharded = ShardedSim::new(cfg.seed, cfg.shards).with_workers(workers);
    let report = sharded.run(groups, |g, gs| manyflow::run_group(&cfg, g, gs));
    (
        prometheus::render(&report.registry),
        report.trace_digest,
        series::to_jsonl(&report.series),
    )
}

#[test]
fn manyflow_heap_and_wheel_agree_for_eight_seeds_all_layouts() {
    for seed in 1..=8u64 {
        for shards in [1usize, 2, 4] {
            for workers in [1usize, 2, 4] {
                let (wheel_prom, wheel_digest, wheel_series) =
                    fleet_outputs(seed, shards, workers, false);
                let (heap_prom, heap_digest, heap_series) =
                    fleet_outputs(seed, shards, workers, true);
                assert!(
                    !wheel_prom.is_empty(),
                    "seed {seed}: fleet exported no metrics"
                );
                assert_eq!(
                    wheel_prom, heap_prom,
                    "seed {seed} / {shards} shards / {workers} workers: \
                     Prometheus output diverged between wheel and heap"
                );
                assert_eq!(
                    wheel_digest, heap_digest,
                    "seed {seed} / {shards} shards / {workers} workers: \
                     trace digest diverged between wheel and heap"
                );
                assert_eq!(
                    wheel_series, heap_series,
                    "seed {seed} / {shards} shards / {workers} workers: \
                     series JSONL diverged between wheel and heap"
                );
            }
        }
    }
}

/// Everything observable from one Fig. 4 pilot run.
fn pilot_outputs(mut cfg: PilotConfig, heap: bool) -> (String, String, String) {
    cfg.heap_scheduler = heap;
    let mut pilot = Pilot::build(cfg);
    pilot.enable_trace_bounded(4096);
    pilot.enable_series(Time::from_millis(1));
    pilot.run(Time::from_secs(300));
    let trace = pilot
        .trace_records()
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join("\n");
    (
        prometheus::render(&pilot.metrics()),
        trace,
        series::to_jsonl(&pilot.take_series()),
    )
}

#[test]
fn faulted_pilot_heap_and_wheel_agree() {
    // E12-style: composed WAN faults (reorder, duplication, jitter,
    // periodic flaps) on top of corruption loss. The fault layer draws
    // from its own seeded streams, so engine-order bugs show up as
    // diverged fault verdicts long before they corrupt counters.
    for seed in [7u64, 21, 63] {
        let mut cfg = PilotConfig::default_run();
        cfg.seed = seed;
        cfg.message_count = 400;
        cfg.wan_fault = FaultSpec::none()
            .with_reorder(0.05, Time::from_micros(500))
            .with_duplication(0.02, Time::from_micros(50))
            .with_jitter(Time::from_micros(100))
            .with_scheduled_outage(PeriodicOutage {
                first_down: Time::from_micros(200),
                down_for: Time::from_millis(2),
                period: Time::from_millis(50),
            });
        let wheel = pilot_outputs(cfg.clone(), false);
        let heap = pilot_outputs(cfg, true);
        assert_eq!(wheel.0, heap.0, "seed {seed}: faulted pilot metrics");
        assert_eq!(wheel.1, heap.1, "seed {seed}: faulted pilot trace");
        assert_eq!(wheel.2, heap.2, "seed {seed}: faulted pilot series");
    }
}

#[test]
fn crash_failover_pilot_heap_and_wheel_agree() {
    // E13-style: DTN 1 crashes mid-run with a standby in the chain, then
    // restarts. Crash/restart events ride the same queue as packets and
    // timers, so this exercises tie-breaking between control events and
    // data events at one timestamp.
    for seed in [7u64, 42] {
        let mut cfg = PilotConfig::default_run();
        cfg.seed = seed;
        cfg.message_count = 300;
        cfg.standby = true;
        cfg.crash_node = Some("dtn1".to_string());
        cfg.crash_at = Time::from_millis(4);
        cfg.restart_at = Some(Time::from_millis(40));
        let wheel = pilot_outputs(cfg.clone(), false);
        let heap = pilot_outputs(cfg, true);
        assert_eq!(wheel.0, heap.0, "seed {seed}: failover pilot metrics");
        assert_eq!(wheel.1, heap.1, "seed {seed}: failover pilot trace");
        assert_eq!(wheel.2, heap.2, "seed {seed}: failover pilot series");
    }
}

#[test]
fn schedulers_actually_differ_in_implementation() {
    // Differential sanity: a test suite proving "A == B" is vacuous if
    // both labels select the same engine. The escape hatch must change
    // the simulator's scheduler marker, and the fleet must still finish.
    let wheel = manyflow::run(&ManyFlowConfig::quick(5));
    let heap = manyflow::run(&ManyFlowConfig::quick(5).with_heap_scheduler());
    assert!(wheel.shard.packets > 0);
    assert_eq!(wheel.shard.packets, heap.shard.packets);
    assert_eq!(wheel.shard.trace_digest, heap.shard.trace_digest);
}
