//! Differential flow-table equivalence: the struct-of-arrays flow-state
//! core that replaced boxed per-sensor nodes must be *observationally
//! identical* — not merely "close". Every digest the harness can
//! produce (Prometheus text, trace digests, series JSONL) must be
//! byte-equal between the SoA fleet and the seed AoS layout, across
//! seeds, shard counts, and forced worker layouts — and between the
//! pilot with its flow-table row wired in and without it.
//!
//! The AoS layout survives one release solely as the reference path for
//! this suite; see DESIGN.md §14 for the borrow discipline and layout.

use mmt::netsim::{FaultSpec, PeriodicOutage, ShardedSim, Time};
use mmt::pilot::manyflow::{self, ManyFlowConfig};
use mmt::pilot::{Pilot, PilotConfig};
use mmt::protocol::controller::{ControllerConfig, ModeController};
use mmt::telemetry::{prometheus, series};

/// Everything observable from one many-flow fleet run.
fn fleet_outputs(seed: u64, shards: usize, workers: usize, aos: bool) -> (String, u64, String) {
    let mut cfg = ManyFlowConfig::quick(seed)
        .with_shards(shards)
        .with_series(Time::from_micros(100));
    if aos {
        cfg = cfg.with_aos_sensors();
    }
    let groups = cfg.dtns;
    let sharded = ShardedSim::new(cfg.seed, cfg.shards).with_workers(workers);
    let report = sharded.run(groups, |g, gs| manyflow::run_group(&cfg, g, gs));
    (
        prometheus::render(&report.registry),
        report.trace_digest,
        series::to_jsonl(&report.series),
    )
}

#[test]
fn manyflow_soa_and_aos_agree_for_eight_seeds_all_layouts() {
    for seed in 1..=8u64 {
        for shards in [1usize, 2, 4] {
            for workers in [1usize, 2, 4] {
                let (soa_prom, soa_digest, soa_series) =
                    fleet_outputs(seed, shards, workers, false);
                let (aos_prom, aos_digest, aos_series) = fleet_outputs(seed, shards, workers, true);
                assert!(
                    !soa_prom.is_empty(),
                    "seed {seed}: fleet exported no metrics"
                );
                assert_eq!(
                    soa_prom, aos_prom,
                    "seed {seed} / {shards} shards / {workers} workers: \
                     Prometheus output diverged between SoA and AoS flow state"
                );
                assert_eq!(
                    soa_digest, aos_digest,
                    "seed {seed} / {shards} shards / {workers} workers: \
                     trace digest diverged between SoA and AoS flow state"
                );
                assert_eq!(
                    soa_series, aos_series,
                    "seed {seed} / {shards} shards / {workers} workers: \
                     series JSONL diverged between SoA and AoS flow state"
                );
            }
        }
    }
}

#[test]
fn manyflow_soa_wheel_matches_aos_heap() {
    // Cross product of the two differential axes: the SoA fleet on the
    // production wheel scheduler must match the seed AoS layout on the
    // reference heap. Catches interactions neither suite sees alone
    // (e.g. a table-order bug masked by identical wheel cascades).
    for seed in [3u64, 11] {
        let soa_wheel = {
            let cfg = ManyFlowConfig::quick(seed).with_shards(2);
            let sharded = ShardedSim::new(cfg.seed, cfg.shards).with_workers(2);
            sharded.run(cfg.dtns, |g, gs| manyflow::run_group(&cfg, g, gs))
        };
        let aos_heap = {
            let cfg = ManyFlowConfig::quick(seed)
                .with_shards(2)
                .with_aos_sensors()
                .with_heap_scheduler();
            let sharded = ShardedSim::new(cfg.seed, cfg.shards).with_workers(2);
            sharded.run(cfg.dtns, |g, gs| manyflow::run_group(&cfg, g, gs))
        };
        assert_eq!(
            prometheus::render(&soa_wheel.registry),
            prometheus::render(&aos_heap.registry),
            "seed {seed}: SoA+wheel vs AoS+heap metrics"
        );
        assert_eq!(
            soa_wheel.trace_digest, aos_heap.trace_digest,
            "seed {seed}: SoA+wheel vs AoS+heap trace digest"
        );
        assert_eq!(soa_wheel.packets, aos_heap.packets);
        assert_eq!(soa_wheel.events, aos_heap.events);
    }
}

/// Everything observable from one Fig. 4 pilot run under the closed
/// adaptation loop — the loop that parks the controller's mode word in
/// the flow table and thaws it back every control interval.
fn pilot_outputs(mut cfg: PilotConfig, flow_table: bool) -> (String, String, String, u64) {
    cfg.flow_table = flow_table;
    let mut pilot = Pilot::build(cfg);
    pilot.enable_trace_bounded(4096);
    pilot.enable_series(Time::from_millis(1));
    let mut controller = ModeController::new(ControllerConfig::default());
    let applied = pilot.run_adaptive(Time::from_secs(300), Time::from_millis(5), &mut controller);
    let trace = pilot
        .trace_records()
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join("\n");
    (
        prometheus::render(&pilot.metrics()),
        trace,
        series::to_jsonl(&pilot.take_series()),
        applied,
    )
}

#[test]
fn faulted_pilot_flow_table_on_and_off_agree() {
    // E12-style: composed WAN faults (reorder, duplication, jitter,
    // periodic flaps) on top of corruption loss. The mode controller's
    // word is parked in and thawed from the flow table every control
    // interval, so a single misplaced bit in the round-trip shows up as
    // diverged adaptation decisions and counters.
    for seed in [7u64, 21, 63] {
        let mut cfg = PilotConfig::default_run();
        cfg.seed = seed;
        cfg.message_count = 400;
        cfg.wan_fault = FaultSpec::none()
            .with_reorder(0.05, Time::from_micros(500))
            .with_duplication(0.02, Time::from_micros(50))
            .with_jitter(Time::from_micros(100))
            .with_scheduled_outage(PeriodicOutage {
                first_down: Time::from_micros(200),
                down_for: Time::from_millis(2),
                period: Time::from_millis(50),
            });
        let on = pilot_outputs(cfg.clone(), true);
        let off = pilot_outputs(cfg, false);
        assert_eq!(on.0, off.0, "seed {seed}: faulted pilot metrics");
        assert_eq!(on.1, off.1, "seed {seed}: faulted pilot trace");
        assert_eq!(on.2, off.2, "seed {seed}: faulted pilot series");
        assert_eq!(
            on.3, off.3,
            "seed {seed}: faulted pilot transitions applied"
        );
    }
}

#[test]
fn crash_failover_pilot_flow_table_on_and_off_agree() {
    // E13-style: DTN 1 crashes mid-run with a standby in the chain, then
    // restarts. Failover flips the flow's retransmit-buffer slot from
    // primary to standby in the table; the flip must mirror — never
    // drive — the recovery path.
    for seed in [7u64, 42] {
        let mut cfg = PilotConfig::default_run();
        cfg.seed = seed;
        cfg.message_count = 300;
        cfg.standby = true;
        cfg.crash_node = Some("dtn1".to_string());
        cfg.crash_at = Time::from_millis(4);
        cfg.restart_at = Some(Time::from_millis(40));
        let on = pilot_outputs(cfg.clone(), true);
        let off = pilot_outputs(cfg, false);
        assert_eq!(on.0, off.0, "seed {seed}: failover pilot metrics");
        assert_eq!(on.1, off.1, "seed {seed}: failover pilot trace");
        assert_eq!(on.2, off.2, "seed {seed}: failover pilot series");
        assert_eq!(
            on.3, off.3,
            "seed {seed}: failover pilot transitions applied"
        );
    }
}

#[test]
fn layouts_actually_differ_in_implementation() {
    // Differential sanity: a suite proving "A == B" is vacuous if both
    // labels select the same layout. The SoA fleet must carry a live
    // flow table sized to the fleet; the AoS escape hatch must not.
    let cfg = ManyFlowConfig::quick(5);
    let soa = manyflow::run(&cfg);
    let aos = manyflow::run(&cfg.clone().with_aos_sensors());
    assert!(soa.shard.packets > 0);
    assert_eq!(soa.shard.packets, aos.shard.packets);
    assert_eq!(soa.shard.trace_digest, aos.shard.trace_digest);
}
