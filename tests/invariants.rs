//! Seeded randomized integration tests: system invariants under
//! randomized conditions. Simulations are heavyweight, so each property
//! runs a handful of deterministic cases — plenty when each case streams
//! hundreds of messages, and every failure replays from the fixed seeds.

use mmt::netsim::{LossModel, SimRng, Time};
use mmt::pilot::{Pilot, PilotConfig};

/// Conservation law: delivered + lost == sent, for any loss rate,
/// RTT, and message count.
#[test]
fn pilot_conserves_messages() {
    let mut rng = SimRng::new(0x1217_0001);
    for _ in 0..8 {
        let loss = rng.next_f64() * 0.05;
        let rtt_ms = 1 + rng.next_bounded(99);
        let messages = 50 + rng.next_bounded(350) as usize;
        let seed = rng.next_bounded(1000);
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::Random(loss);
        cfg.wan_rtt = Time::from_millis(rtt_ms);
        cfg.message_count = messages;
        cfg.seed = seed;
        cfg.receiver_give_up = Time::from_millis(800);
        cfg.receiver_nak_interval = Time::from_millis(rtt_ms * 2 + 1);
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(60));
        let r = pilot.report();
        assert_eq!(r.sender.sent, messages as u64);
        assert_eq!(r.receiver.delivered + r.receiver.lost, r.sender.sent);
        // No duplicates ever reach the application.
        let mut seen = std::collections::HashSet::new();
        let receiver = pilot
            .sim
            .node_as::<mmt::protocol::MmtReceiver>(pilot.receiver)
            .unwrap();
        for m in receiver.log() {
            assert!(seen.insert(m.msg_index), "duplicate delivery");
        }
    }
}

/// Latency floor: nothing arrives faster than the propagation path.
#[test]
fn latency_never_beats_light() {
    let mut rng = SimRng::new(0x1217_0002);
    for _ in 0..8 {
        let rtt_ms = 2 + rng.next_bounded(78);
        let seed = rng.next_bounded(100);
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::None;
        cfg.wan_rtt = Time::from_millis(rtt_ms);
        cfg.message_count = 100;
        cfg.seed = seed;
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(30));
        let receiver = pilot
            .sim
            .node_as::<mmt::protocol::MmtReceiver>(pilot.receiver)
            .unwrap();
        let floor = Time::from_millis(rtt_ms) / 2;
        for m in receiver.log() {
            assert!(m.arrived_at - m.created_at >= floor);
        }
    }
}

/// The aged flag is exactly the predicate "age exceeded the budget":
/// with deadline == max_age, flagged messages are precisely the late
/// ones.
#[test]
fn aged_flag_matches_lateness() {
    let mut rng = SimRng::new(0x1217_0003);
    for _ in 0..8 {
        let budget_ms = 1 + rng.next_bounded(19);
        let seed = rng.next_bounded(100);
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::None;
        cfg.wan_rtt = Time::from_millis(10);
        cfg.deadline_budget = Time::from_millis(budget_ms);
        cfg.max_age = Time::from_millis(budget_ms);
        cfg.message_count = 100;
        cfg.seed = seed;
        let max_age = cfg.max_age;
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(30));
        let receiver = pilot
            .sim
            .node_as::<mmt::protocol::MmtReceiver>(pilot.receiver)
            .unwrap();
        // The age *value* is stamped at the Tofino element; the aged *flag*
        // can additionally be set by the DTN 2 deadline check, which runs
        // one short hop (~1 µs + serialization) before host arrival. Allow
        // that hop as slack around the budget edge.
        let slack = Time::from_micros(10);
        for m in receiver.log() {
            let arrival_age = m.arrived_at - m.created_at;
            if m.aged {
                assert!(
                    arrival_age + slack > max_age,
                    "flagged but on time: age={arrival_age} budget={max_age}"
                );
            } else {
                assert!(
                    arrival_age < max_age + slack,
                    "late but unflagged: age={arrival_age} budget={max_age}"
                );
            }
        }
    }
}
