//! Seeded chaos invariant harness: the Fig. 4 pilot under composed WAN
//! faults (reordering, duplication, jitter, link flaps, selective
//! control-plane loss) layered on corruption loss.
//!
//! Every case is deterministic: the fault layer draws from its own
//! seeded stream, so ANY failure replays exactly by re-running with the
//! seed printed in the assertion message. The invariants:
//!
//! 1. **Conservation** — delivered + lost == sent, no matter what the
//!    network does.
//! 2. **Exactly-once delivery** — no duplicate application-level
//!    deliveries, even when the network duplicates packets and NAK
//!    retransmissions race delayed originals.
//! 3. **Age-stamp sanity** — the in-network age carried by a header
//!    never exceeds the true creation→delivery time (age is stamped
//!    upstream of arrival), and the aged flag matches lateness.
//! 4. **Deadline-notification semantics** — a generous budget yields
//!    zero notifications under any fault mix; an impossible budget
//!    notifies for every message that crosses the WAN.

use mmt::netsim::{FaultSpec, LossModel, PeriodicOutage, Time};
use mmt::pilot::experiments::failover;
use mmt::pilot::topology::{addrs, STANDBY_NAK_PORT};
use mmt::pilot::{Pilot, PilotConfig, PilotReport};
use mmt::protocol::{MmtReceiver, ModeController};
use std::collections::HashSet;

/// The composed fault ladder. Outages start at 200 µs so the stream head
/// (which announces the retransmit source) always gets through.
fn fault_combos() -> Vec<(&'static str, FaultSpec)> {
    let flap = PeriodicOutage {
        first_down: Time::from_micros(200),
        down_for: Time::from_millis(2),
        period: Time::from_millis(50),
    };
    let combined = FaultSpec::none()
        .with_reorder(0.05, Time::from_micros(500))
        .with_duplication(0.02, Time::from_micros(50))
        .with_jitter(Time::from_micros(100))
        .with_scheduled_outage(flap)
        .with_control_loss(0.2);
    vec![
        (
            "reorder",
            FaultSpec::none().with_reorder(0.2, Time::from_micros(500)),
        ),
        (
            "dup",
            FaultSpec::none().with_duplication(0.1, Time::from_micros(50)),
        ),
        (
            "jitter",
            FaultSpec::none().with_jitter(Time::from_micros(200)),
        ),
        ("flap", FaultSpec::none().with_scheduled_outage(flap)),
        (
            "random-outage",
            FaultSpec::none().with_random_outage(Time::from_millis(20), Time::from_millis(1)),
        ),
        ("nak-loss", FaultSpec::none().with_control_loss(0.3)),
        ("combined", combined),
    ]
}

/// The headline combination from the acceptance criteria: reorder +
/// duplication + link flap + 10⁻³ corruption loss with NAK loss enabled.
fn headline_fault() -> FaultSpec {
    FaultSpec::none()
        .with_reorder(0.05, Time::from_micros(500))
        .with_duplication(0.02, Time::from_micros(50))
        .with_scheduled_outage(PeriodicOutage {
            first_down: Time::from_micros(200),
            down_for: Time::from_millis(2),
            period: Time::from_millis(50),
        })
        .with_control_loss(0.2)
}

fn chaos_config(seed: u64, messages: usize, fault: FaultSpec) -> PilotConfig {
    let mut cfg = PilotConfig::default_run();
    cfg.message_count = messages;
    cfg.wan_loss = LossModel::Random(1e-3);
    cfg.wan_fault = fault;
    cfg.seed = seed;
    cfg.retx_holdoff = Time::from_millis(2);
    cfg.receiver_give_up = Time::from_secs(10);
    cfg
}

fn run_chaos(cfg: PilotConfig) -> Pilot {
    let mut pilot = Pilot::build(cfg);
    pilot.run(Time::from_secs(120));
    pilot
}

/// The invariants every chaos run must satisfy, complete or not.
/// `ctx` and `seed` make each failure replayable.
fn assert_invariants(pilot: &Pilot, seed: u64, ctx: &str) -> PilotReport {
    let r = pilot.report();
    // 1. Conservation.
    assert_eq!(
        r.receiver.delivered + r.receiver.lost,
        r.sender.sent,
        "[seed {seed}] {ctx}: conservation violated \
         (delivered {} + lost {} != sent {})",
        r.receiver.delivered,
        r.receiver.lost,
        r.sender.sent,
    );
    let receiver = pilot
        .sim
        .node_as::<MmtReceiver>(pilot.receiver)
        .expect("receiver type");
    // 2. Exactly-once application delivery.
    let mut seen = HashSet::new();
    for m in receiver.log() {
        assert!(
            seen.insert(m.msg_index),
            "[seed {seed}] {ctx}: duplicate app-level delivery of message {}",
            m.msg_index,
        );
    }
    assert_eq!(
        seen.len() as u64,
        r.receiver.delivered,
        "[seed {seed}] {ctx}: delivery log disagrees with counter",
    );
    // 3. Age-stamp sanity: the carried age was measured strictly before
    // host arrival, so it can never exceed true end-to-end time (plus
    // the final short hop's serialization slack).
    let slack = Time::from_micros(10).as_nanos();
    for m in receiver.log() {
        let e2e = m.arrived_at.saturating_sub(m.created_at).as_nanos();
        if let Some(age) = m.age_ns {
            assert!(
                age <= e2e + slack,
                "[seed {seed}] {ctx}: msg {} carries age {age} ns \
                 exceeding its end-to-end time {e2e} ns",
                m.msg_index,
            );
        }
    }
    r
}

/// Acceptance headline: under combined reorder + duplication + link-flap
/// plus 10⁻³ loss with NAK loss enabled, the pilot delivers ALL messages
/// within the give-up budget with ZERO duplicate app-level deliveries —
/// across 32 fixed seeds.
#[test]
fn chaos_headline_combined_faults_32_seeds() {
    for seed in 0..32u64 {
        let pilot = run_chaos(chaos_config(seed, 400, headline_fault()));
        let r = assert_invariants(&pilot, seed, "headline");
        assert!(
            pilot.is_complete(),
            "[seed {seed}] headline: stream incomplete \
             (delivered {}, lost {}, naks {})",
            r.receiver.delivered,
            r.receiver.lost,
            r.receiver.naks_sent,
        );
        assert_eq!(
            r.receiver.lost, 0,
            "[seed {seed}] headline: messages lost under recoverable faults",
        );
        assert_eq!(r.receiver.delivered, 400, "[seed {seed}] headline");
    }
}

/// Every fault class alone (and combined), several seeds each: the
/// invariants hold whether or not the run completes.
#[test]
fn chaos_matrix_invariants_hold() {
    for (name, fault) in fault_combos() {
        for seed in [1u64, 7, 23, 0xC0FFEE] {
            let pilot = run_chaos(chaos_config(seed, 300, fault));
            let r = assert_invariants(&pilot, seed, name);
            // Recoverable fault classes must also converge.
            assert!(
                pilot.is_complete(),
                "[seed {seed}] {name}: incomplete (delivered {}, lost {}, naks {})",
                r.receiver.delivered,
                r.receiver.lost,
                r.receiver.naks_sent,
            );
        }
    }
}

/// A brutally short give-up budget forces the lost path: conservation
/// and dedup must hold even when gaps are abandoned.
#[test]
fn chaos_give_up_path_still_conserves() {
    let mut total_lost = 0;
    for seed in [3u64, 11, 42, 0xBAD5EED] {
        let mut cfg = chaos_config(seed, 300, headline_fault());
        // Give up before flap-window recovery can complete.
        cfg.receiver_give_up = Time::from_millis(8);
        cfg.wan_loss = LossModel::Random(2e-2);
        let pilot = run_chaos(cfg);
        let r = assert_invariants(&pilot, seed, "short-give-up");
        total_lost += r.receiver.lost;
    }
    assert!(
        total_lost > 0,
        "the harsh budget must exercise abandonment on at least one seed",
    );
}

/// Deadline-notification semantics survive faults: a generous budget
/// yields zero notifications and zero aged deliveries; an impossible
/// budget flags everything that crosses the WAN.
#[test]
fn chaos_deadline_semantics_under_faults() {
    // Generous: 10 s budget dwarfs any fault-induced delay here.
    let mut cfg = chaos_config(5, 200, headline_fault());
    cfg.deadline_budget = Time::from_secs(10);
    cfg.max_age = Time::from_secs(10);
    let pilot = run_chaos(cfg);
    let r = assert_invariants(&pilot, 5, "generous-deadline");
    assert_eq!(
        r.sender.deadline_notifications, 0,
        "[seed 5] generous budget must produce no notifications",
    );
    assert_eq!(r.receiver.aged_deliveries, 0, "[seed 5]");

    // Impossible: 1 ms against a 5 ms one-way WAN — every delivered
    // message is aged, and the sensor hears about it.
    let mut cfg = chaos_config(5, 200, headline_fault());
    cfg.deadline_budget = Time::from_millis(1);
    cfg.max_age = Time::from_millis(1);
    let pilot = run_chaos(cfg);
    let r = assert_invariants(&pilot, 5, "impossible-deadline");
    assert_eq!(
        r.receiver.aged_deliveries, r.receiver.delivered,
        "[seed 5] every delivery beats a 1 ms budget? impossible",
    );
    assert!(
        r.sender.deadline_notifications > 0,
        "[seed 5] the sensor must hear about deadline misses",
    );
}

/// Chaos runs replay byte-identically from the same seed (stats level;
/// the telemetry determinism suite covers the exporters).
#[test]
fn chaos_runs_are_deterministic() {
    for seed in [7u64, 19] {
        let a = run_chaos(chaos_config(seed, 300, headline_fault())).report();
        let b = run_chaos(chaos_config(seed, 300, headline_fault())).report();
        assert_eq!(a.receiver, b.receiver, "[seed {seed}]");
        assert_eq!(a.sender, b.sender, "[seed {seed}]");
        assert_eq!(a.buffer, b.buffer, "[seed {seed}]");
        assert_eq!(a.completed_at, b.completed_at, "[seed {seed}]");
    }
}

/// CI smoke subset: one fixed-seed headline run. Fast, deterministic,
/// and exercising every fault class plus the full invariant set.
#[test]
fn smoke_chaos_fixed_seed() {
    let pilot = run_chaos(chaos_config(7, 300, headline_fault()));
    let r = assert_invariants(&pilot, 7, "smoke");
    assert!(pilot.is_complete(), "[seed 7] smoke incomplete");
    assert_eq!(r.receiver.lost, 0, "[seed 7]");
}

// ---------------------------------------------------------------------
// Crash / failover chaos: DTN 1 dies mid-run.
// ---------------------------------------------------------------------

/// E13-shaped crash scenario: enough corruption loss that the dead
/// retransmission store always matters, crash after the send burst but
/// before the first NAKs land, standby tap in the chain.
fn crash_config(seed: u64, messages: usize) -> PilotConfig {
    let mut cfg = chaos_config(seed, messages, FaultSpec::none());
    cfg.wan_loss = LossModel::Random(3e-2);
    cfg.receiver_max_nak_retries = Some(6);
    cfg.standby = true;
    cfg.crash_node = Some("dtn1".to_string());
    cfg.crash_at = Time::from_millis(6);
    cfg.restart_at = None;
    cfg
}

fn run_crash_adaptive(cfg: PilotConfig) -> (Pilot, ModeController) {
    let mut pilot = Pilot::build(cfg);
    let mut controller = ModeController::new(failover::controller_config());
    pilot.run_adaptive(Time::from_secs(120), Time::from_millis(5), &mut controller);
    (pilot, controller)
}

/// Acceptance headline for the self-healing PR: with closed-loop
/// adaptation, a mid-transfer DTN 1 crash (its retransmission store dies
/// with it, never to return) is survived exactly-once and
/// conservation-clean via re-homed NAK recovery — across 8 seeds.
#[test]
fn chaos_crash_failover_adaptive_8_seeds() {
    for seed in 0..8u64 {
        let (pilot, controller) = run_crash_adaptive(crash_config(seed, 300));
        let r = assert_invariants(&pilot, seed, "crash-adaptive");
        assert!(
            pilot.is_complete(),
            "[seed {seed}] crash-adaptive: incomplete (delivered {}, lost {}, exhausted {})",
            r.receiver.delivered,
            r.receiver.lost,
            r.receiver.nak_retries_exhausted,
        );
        assert_eq!(
            r.receiver.lost, 0,
            "[seed {seed}] crash-adaptive: re-homed recovery must fill every gap",
        );
        assert!(
            r.receiver.recovered > 0,
            "[seed {seed}] crash-adaptive: the crash must have left gaps to recover",
        );
        assert_eq!(
            controller.stats().rehomes,
            1,
            "[seed {seed}] crash-adaptive: exactly one re-home",
        );
        assert_eq!(
            r.receiver_retransmit_source,
            Some((addrs::STANDBY, STANDBY_NAK_PORT)),
            "[seed {seed}] crash-adaptive: receiver must end the run homed on the standby",
        );
        let sb = r.standby.expect("standby stats present");
        // Every recovery came from the standby (the primary is dead); a
        // retried NAK can be served twice, the duplicate deduped on
        // arrival, so served can exceed recovered but never trail it.
        assert!(
            sb.served >= r.receiver.recovered && sb.served > 0,
            "[seed {seed}] crash-adaptive: standby served {} vs recovered {}",
            sb.served,
            r.receiver.recovered,
        );
    }
}

/// The control arm: the same crash with adaptation disabled measurably
/// degrades — NAK retries exhaust against the dead primary and the gap
/// sequences are abandoned — while conservation and exactly-once still
/// hold on every seed.
#[test]
fn chaos_crash_without_adaptation_degrades_8_seeds() {
    for seed in 0..8u64 {
        let pilot = run_chaos(crash_config(seed, 300));
        let r = assert_invariants(&pilot, seed, "crash-static");
        assert!(
            r.receiver.nak_retries_exhausted > 0,
            "[seed {seed}] crash-static: retries must exhaust against the dead primary",
        );
        assert!(
            r.receiver.lost > 0,
            "[seed {seed}] crash-static: the dead store must cost deliveries",
        );
        assert!(!pilot.is_complete(), "[seed {seed}] crash-static");
    }
}

/// Crash *mid-send* with a later restart: packets arriving at the dead
/// DTN are genuinely destroyed (no store, no standby tap), so some loss
/// is unavoidable — but conservation and exactly-once must survive the
/// crash/restart cycle, and the post-restart buffer must resume cleanly.
#[test]
fn chaos_crash_mid_send_with_restart_conserves() {
    for seed in [1u64, 7, 23, 0xC0FFEE] {
        let mut cfg = crash_config(seed, 300);
        cfg.crash_at = Time::from_micros(200); // inside the send burst
        cfg.restart_at = Some(Time::from_millis(5));
        let (pilot, _controller) = run_crash_adaptive(cfg);
        let r = assert_invariants(&pilot, seed, "crash-mid-send");
        assert!(
            r.receiver.delivered > 0,
            "[seed {seed}] crash-mid-send: the restarted buffer must resume forwarding",
        );
    }
}

/// Hysteresis bound: a flapping WAN drives loss-rate spikes every flap
/// period, but the controller's EWMA + clean-interval damping keeps the
/// mode_change count bounded instead of toggling once per sample.
#[test]
fn chaos_flapping_wan_mode_changes_are_hysteresis_bounded() {
    for seed in [7u64, 19] {
        let mut cfg = chaos_config(seed, 2_000, FaultSpec::none());
        cfg.wan_fault = FaultSpec::none().with_scheduled_outage(PeriodicOutage {
            first_down: Time::from_micros(200),
            down_for: Time::from_millis(2),
            period: Time::from_millis(50),
        });
        cfg.standby = true;
        let mut pilot = Pilot::build(cfg);
        let mut controller = ModeController::new(failover::controller_config());
        pilot.run_adaptive(Time::from_secs(120), Time::from_millis(5), &mut controller);
        let r = assert_invariants(&pilot, seed, "flapping-adaptive");
        assert!(pilot.is_complete(), "[seed {seed}] flapping-adaptive");
        assert_eq!(r.receiver.lost, 0, "[seed {seed}] flapping-adaptive");
        let s = controller.stats();
        assert!(
            s.transitions() >= 1,
            "[seed {seed}] flapping-adaptive: the flap must trip at least one transition",
        );
        assert!(
            s.transitions() <= 12,
            "[seed {seed}] flapping-adaptive: hysteresis must bound flapping \
             (got {} transitions over {} samples)",
            s.transitions(),
            s.samples,
        );
    }
}
