//! Cross-crate integration tests: the whole system through the facade.

use mmt::netsim::{LossModel, Time};
use mmt::pilot::{Pilot, PilotConfig};
use mmt::protocol::{MmtReceiver, MmtSender, RetransmitBuffer};
use mmt::wire::mmt::Features;

#[test]
fn pilot_under_heavy_loss_still_delivers_every_message() {
    let mut cfg = PilotConfig::default_run();
    cfg.wan_loss = LossModel::Random(0.02); // 2% — far above WAN reality
    cfg.message_count = 1_000;
    cfg.receiver_give_up = Time::from_secs(30);
    let mut pilot = Pilot::build(cfg);
    pilot.run(Time::from_secs(120));
    let report = pilot.report();
    assert!(pilot.is_complete(), "{report:?}");
    assert_eq!(report.receiver.lost, 0);
    assert!(report.receiver.recovered >= report.wan_corruption_losses / 2);
    // Conservation: every message accounted for.
    assert_eq!(report.receiver.delivered, 1_000);
}

#[test]
fn message_accounting_is_conserved_across_loss_rates() {
    for (i, loss) in [0.0, 1e-4, 1e-3, 1e-2].into_iter().enumerate() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::Random(loss);
        cfg.message_count = 400;
        cfg.seed = 100 + i as u64;
        cfg.receiver_give_up = Time::from_millis(500);
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(60));
        let r = pilot.report();
        // delivered + permanently-lost == sent, always.
        assert_eq!(
            r.receiver.delivered + r.receiver.lost,
            r.sender.sent,
            "loss={loss}: {r:?}"
        );
    }
}

#[test]
fn delivered_frames_carry_the_upgraded_mode() {
    let mut cfg = PilotConfig::default_run();
    cfg.wan_loss = LossModel::None;
    cfg.message_count = 50;
    let mut pilot = Pilot::build(cfg);
    pilot.run(Time::from_secs(10));
    // Inspect the receiver's log: every message was sequenced and aged —
    // features the *sensor never set* (it emits mode 0). The network did.
    let receiver = pilot
        .sim
        .node_as::<MmtReceiver>(pilot.receiver)
        .expect("receiver");
    assert_eq!(receiver.log().len(), 50);
    for m in receiver.log() {
        assert!(m.seq.is_some(), "sequenced in-network");
        assert!(m.age_ns.is_some(), "age tracked in-network");
    }
    // The sensor really did emit mode 0.
    let sender = pilot
        .sim
        .node_as::<MmtSender>(pilot.sensor)
        .expect("sender");
    assert_eq!(sender.stats.sent, 50);
    // And the buffer retained the upgraded stream for recovery.
    let buffer = pilot
        .sim
        .node_as::<RetransmitBuffer>(pilot.dtn1)
        .expect("buffer");
    assert_eq!(buffer.stored_count(), 50);
}

#[test]
fn deterministic_end_to_end() {
    let run = |seed| {
        let mut cfg = PilotConfig::default_run();
        cfg.seed = seed;
        cfg.message_count = 300;
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(30));
        let r = pilot.report();
        (
            r.receiver.delivered,
            r.receiver.naks_sent,
            r.wan_corruption_losses,
            r.completed_at,
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43), "different seeds, different loss pattern");
}

#[test]
fn features_compose_across_the_whole_stack() {
    // A mode-2 header built by `mmt-core`'s Mode, applied via
    // `mmt-dataplane`, parsed by `mmt-wire` — the layering the workspace
    // claims.
    use mmt::dataplane::action::Intrinsics;
    use mmt::dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
    use mmt::protocol::Mode;
    use mmt::wire::mmt::{ExperimentId, MmtRepr};
    use mmt::wire::{EthernetAddress, Ipv4Address};

    let mode = Mode::mode2_wan(
        (Ipv4Address::new(10, 0, 0, 5), 47_000),
        50_000_000,
        Ipv4Address::new(10, 0, 0, 1),
        40_000_000,
    );
    let mut pipeline = mmt::dataplane::PipelineBuilder::new()
        .table({
            let mut t =
                mmt::dataplane::Table::new("upgrade", vec![mmt::dataplane::MatchField::IsMmt]);
            t.insert(mmt::dataplane::TableEntry {
                key: vec![mmt::dataplane::FieldValue::Exact(1)],
                priority: 0,
                actions: vec![
                    mmt::dataplane::Action::Upgrade(mode.as_upgrade(Some(0))),
                    mmt::dataplane::Action::Forward { port: 1 },
                ],
            });
            t
        })
        .registers(1)
        .build();
    let frame = build_eth_mmt_frame(
        EthernetAddress([2, 0, 0, 0, 0, 1]),
        EthernetAddress([2, 0, 0, 0, 0, 2]),
        &MmtRepr::data(ExperimentId::new(2, 0)),
        b"payload",
    );
    let mut pkt = ParsedPacket::parse(frame, 0);
    pipeline.process(
        &mut pkt,
        Intrinsics {
            now_ns: 100,
            created_at_ns: 0,
        },
    );
    let repr = pkt.mmt_repr().unwrap();
    assert_eq!(repr.features, mode.features);
    assert!(repr.features.contains(Features::ACK_NAK));
    assert_eq!(repr.timeliness().unwrap().deadline_ns, 50_000_000);
}

#[test]
fn recovery_works_over_every_framing() {
    // Req 1: MMT runs directly on Ethernet, on IPv4, and through a UDP
    // tunnel — and the *same* in-network machinery (border upgrade, NAK
    // recovery from the buffer) must work over each.
    use mmt::dataplane::programs::BorderConfig;
    use mmt::netsim::{Bandwidth, LinkSpec, Simulator};
    use mmt::protocol::buffer::{PORT_DAQ, PORT_WAN};
    use mmt::protocol::receiver::ReceiverConfig;
    use mmt::protocol::sender::{Framing, SenderConfig};
    use mmt::protocol::{MmtReceiver, MmtSender, RetransmitBuffer};
    use mmt::wire::mmt::ExperimentId;
    use mmt::wire::Ipv4Address;

    let exp = ExperimentId::new(2, 0);
    let framings = [
        Framing::Ethernet,
        Framing::Ipv4 {
            src: Ipv4Address::new(10, 0, 0, 1),
            dst: Ipv4Address::new(10, 0, 0, 8),
        },
        Framing::UdpTunnel {
            src: Ipv4Address::new(10, 0, 0, 1),
            dst: Ipv4Address::new(10, 0, 0, 8),
        },
    ];
    for framing in framings {
        let mut sim = Simulator::new(9);
        let mut scfg = SenderConfig::regular(exp, 2048, Time::from_micros(5), 400);
        scfg.framing = framing;
        let sensor = sim.add_node("sensor", Box::new(MmtSender::new(scfg)));
        let dtn1 = sim.add_node(
            "dtn1",
            Box::new(RetransmitBuffer::new(
                exp,
                BorderConfig {
                    daq_port: PORT_DAQ,
                    wan_port: PORT_WAN,
                    retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
                    deadline_budget_ns: Time::from_secs(5).as_nanos(),
                    notify_addr: Ipv4Address::new(10, 0, 0, 1),
                    priority_class: None,
                },
                1 << 26,
                None,
            )),
        );
        let mut rcfg = ReceiverConfig::wan_defaults(exp, Ipv4Address::new(10, 0, 0, 8));
        rcfg.expect_messages = Some(400);
        rcfg.nak_interval = Time::from_millis(25);
        let rcv = sim.add_node("rcv", Box::new(MmtReceiver::new(rcfg)));
        sim.connect(
            sensor,
            0,
            dtn1,
            PORT_DAQ,
            LinkSpec::new(Bandwidth::gbps(10), Time::from_micros(5)),
        );
        sim.connect(
            dtn1,
            PORT_WAN,
            rcv,
            0,
            LinkSpec::new(Bandwidth::gbps(10), Time::from_millis(5))
                .with_loss(LossModel::Random(5e-3)),
        );
        sim.run_until(Time::from_secs(30));
        let r = sim.node_as::<MmtReceiver>(rcv).unwrap();
        assert!(
            r.is_complete(),
            "framing {framing:?}: {} delivered, {} lost",
            r.stats.delivered,
            r.stats.lost
        );
        assert_eq!(r.stats.lost, 0, "framing {framing:?}");
    }
}
