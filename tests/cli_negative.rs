//! Negative-path CLI tests: bad flags must produce a clean usage error
//! (exit code 2 and a pointed message on stderr), never a panic and never
//! a silently-ignored value. A process-level panic would show up as an
//! abort signal / exit 101, which every assertion here would catch.

use std::process::{Command, Output};

fn mmt_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mmt-sim"))
        .args(args)
        .output()
        .expect("spawn mmt-sim")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Exit code 2, no panic, and the given needle on stderr.
fn assert_clean_usage_error(args: &[&str], needle: &str) {
    let out = mmt_sim(args);
    let stderr = stderr_of(&out);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?}: expected exit 2, got {:?}\nstderr: {stderr}",
        out.status
    );
    assert!(
        stderr.contains(needle),
        "{args:?}: stderr missing {needle:?}\nstderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?}: the CLI panicked\nstderr: {stderr}"
    );
}

#[test]
fn no_command_prints_usage() {
    assert_clean_usage_error(&[], "usage: mmt-sim");
}

#[test]
fn unknown_command_prints_usage() {
    assert_clean_usage_error(&["frobnicate"], "usage: mmt-sim");
}

#[test]
fn positional_argument_is_a_syntax_error() {
    assert_clean_usage_error(&["pilot", "extra"], "bad flag syntax");
}

#[test]
fn dangling_flag_is_a_syntax_error() {
    assert_clean_usage_error(&["pilot", "--seed"], "bad flag syntax");
}

#[test]
fn reorder_probability_above_one_rejected() {
    assert_clean_usage_error(
        &["pilot", "--reorder", "1.5"],
        "--reorder must be a probability in [0, 1]",
    );
}

#[test]
fn reorder_probability_non_numeric_rejected() {
    assert_clean_usage_error(&["pilot", "--reorder", "abc"], "could not parse --reorder");
}

#[test]
fn dup_probability_negative_rejected() {
    assert_clean_usage_error(
        &["pilot", "--dup", "-0.1"],
        "--dup must be a probability in [0, 1]",
    );
}

#[test]
fn nak_loss_infinite_rejected() {
    // "inf" parses as a float, so it must be caught by the finiteness
    // check rather than the parse.
    assert_clean_usage_error(
        &["pilot", "--nak-loss", "inf"],
        "--nak-loss must be a probability in [0, 1]",
    );
}

#[test]
fn lone_flap_period_rejected() {
    assert_clean_usage_error(
        &["pilot", "--flap-period-ms", "50"],
        "--flap-period-ms and --flap-down-ms must be given together",
    );
}

#[test]
fn lone_flap_down_rejected() {
    assert_clean_usage_error(
        &["pilot", "--flap-down-ms", "2"],
        "--flap-period-ms and --flap-down-ms must be given together",
    );
}

#[test]
fn flap_down_covering_whole_period_rejected() {
    assert_clean_usage_error(
        &["pilot", "--flap-period-ms", "50", "--flap-down-ms", "50"],
        "must be shorter than",
    );
}

#[test]
fn bad_trace_format_rejected() {
    assert_clean_usage_error(
        &["pilot", "--trace-format", "xml"],
        "--trace-format must be chrome or jsonl",
    );
}

#[test]
fn zero_trace_cap_rejected() {
    assert_clean_usage_error(
        &["pilot", "--trace-cap", "0"],
        "--trace-cap must be at least 1",
    );
}

#[test]
fn non_numeric_message_count_rejected() {
    assert_clean_usage_error(
        &["pilot", "--messages", "lots"],
        "could not parse --messages",
    );
}

#[test]
fn crash_at_without_crash_node_rejected() {
    assert_clean_usage_error(
        &["pilot", "--crash-at", "6"],
        "--crash-at/--restart-at require --crash-node",
    );
}

#[test]
fn restart_before_crash_rejected() {
    assert_clean_usage_error(
        &[
            "pilot",
            "--crash-node",
            "dtn1",
            "--crash-at",
            "6",
            "--restart-at",
            "3",
        ],
        "must be later than --crash-at",
    );
}

#[test]
fn restart_equal_to_crash_rejected() {
    assert_clean_usage_error(
        &["failover", "--crash-at", "6", "--restart-at", "6"],
        "must be later than --crash-at",
    );
}

#[test]
fn unknown_crash_node_rejected() {
    assert_clean_usage_error(
        &["pilot", "--crash-node", "router9"],
        "--crash-node router9 is not a pilot node",
    );
}

#[test]
fn standby_crash_without_adapt_rejected() {
    assert_clean_usage_error(
        &["pilot", "--crash-node", "standby"],
        "--crash-node standby requires --adapt 1",
    );
}

#[test]
fn bad_adapt_value_rejected() {
    assert_clean_usage_error(&["pilot", "--adapt", "2"], "--adapt must be 0 or 1");
}

/// Sanity: a crash + adaptation run works end-to-end through the binary
/// and reports the transition summary and the re-homed source.
#[test]
fn valid_crash_flags_run_clean() {
    let out = mmt_sim(&[
        "pilot",
        "--messages",
        "200",
        "--loss",
        "1e-2",
        "--crash-node",
        "dtn1",
        "--crash-at",
        "6",
        "--adapt",
        "1",
        "--seed",
        "7",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "crash/adapt pilot run failed\nstderr: {}",
        stderr_of(&out)
    );
    assert!(stdout.contains("adaptation:"), "stdout: {stdout}");
    assert!(
        stdout.contains("receiver retransmit source: 10.0.0.6:47001"),
        "stdout: {stdout}"
    );
}

/// Sanity: the fault flags that SHOULD work do work end-to-end through the
/// binary, and the run reports its fault hits.
#[test]
fn valid_fault_flags_run_clean() {
    let out = mmt_sim(&[
        "pilot",
        "--messages",
        "100",
        "--reorder",
        "0.05",
        "--dup",
        "0.02",
        "--nak-loss",
        "0.1",
        "--seed",
        "7",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "faulted pilot run failed\nstderr: {}",
        stderr_of(&out)
    );
    assert!(stdout.contains("fault hits:"), "stdout: {stdout}");
}

#[test]
fn zero_series_interval_rejected() {
    assert_clean_usage_error(
        &[
            "pilot",
            "--series-out",
            "s.jsonl",
            "--series-interval-us",
            "0",
        ],
        "--series-interval-us must be at least 1",
    );
}

#[test]
fn series_interval_without_out_rejected() {
    assert_clean_usage_error(
        &["pilot", "--series-interval-us", "100"],
        "--series-interval-us requires --series-out",
    );
}

#[test]
fn series_out_with_missing_parent_dir_rejected() {
    let path = std::env::temp_dir()
        .join("mmt-no-such-dir-cli-negative")
        .join("series.jsonl");
    assert_clean_usage_error(
        &[
            "pilot",
            "--series-out",
            path.to_str().expect("utf-8 tmpdir"),
        ],
        "--series-out parent directory",
    );
}

#[test]
fn zero_flight_cap_rejected() {
    assert_clean_usage_error(
        &["pilot", "--flight-out", "f.jsonl", "--flight-cap", "0"],
        "--flight-cap must be at least 1",
    );
}

#[test]
fn flight_cap_without_out_rejected() {
    assert_clean_usage_error(
        &["pilot", "--flight-cap", "16"],
        "--flight-cap requires --flight-out",
    );
}

#[test]
fn flight_out_with_missing_parent_dir_rejected() {
    let path = std::env::temp_dir()
        .join("mmt-no-such-dir-cli-negative")
        .join("flight.jsonl");
    assert_clean_usage_error(
        &[
            "pilot",
            "--flight-out",
            path.to_str().expect("utf-8 tmpdir"),
        ],
        "--flight-out parent directory",
    );
}

#[test]
fn bench_bad_profile_value_rejected() {
    assert_clean_usage_error(
        &["bench", "--quick", "1", "--profile", "2"],
        "--profile must be 0 or 1",
    );
}

#[test]
fn bench_zero_shard_count_rejected() {
    assert_clean_usage_error(&["bench", "--shards", "0"], "--shards");
}

#[test]
fn bench_non_numeric_shard_list_rejected() {
    assert_clean_usage_error(&["bench", "--shards", "1,x"], "--shards");
}

#[test]
fn bench_zero_sensors_rejected() {
    assert_clean_usage_error(&["bench", "--sensors", "0"], "--sensors and --packets");
}

#[test]
fn bench_zero_packets_rejected() {
    assert_clean_usage_error(&["bench", "--packets", "0"], "--sensors and --packets");
}

#[test]
fn bench_bad_quick_value_rejected() {
    assert_clean_usage_error(&["bench", "--quick", "2"], "--quick must be 0 or 1");
}

#[test]
fn bench_non_numeric_sensors_rejected() {
    assert_clean_usage_error(&["bench", "--sensors", "abc"], "could not parse --sensors");
}

#[test]
fn io_pilot_bad_listen_address_rejected() {
    assert_clean_usage_error(
        &["io-pilot", "--listen", "not-an-addr"],
        "--listen expects IP:PORT",
    );
}

#[test]
fn io_pilot_bad_connect_address_rejected() {
    // A bare IP without a port is also not a socket address.
    assert_clean_usage_error(
        &["io-pilot", "--connect", "127.0.0.1"],
        "--connect expects IP:PORT",
    );
}

#[test]
fn io_pilot_zero_deadline_rejected() {
    assert_clean_usage_error(
        &["io-pilot", "--deadline-us", "0"],
        "--deadline-us must be at least 1",
    );
}

#[test]
fn io_pilot_loss_above_one_rejected() {
    assert_clean_usage_error(
        &["io-pilot", "--loss", "1.5"],
        "--loss must be a probability in [0, 1]",
    );
}

#[test]
fn io_pilot_listen_and_connect_both_rejected() {
    assert_clean_usage_error(
        &[
            "io-pilot",
            "--listen",
            "127.0.0.1:4000",
            "--connect",
            "127.0.0.1:4001",
        ],
        "--listen and --connect are mutually exclusive",
    );
}

#[test]
fn io_pilot_tiny_payload_rejected() {
    assert_clean_usage_error(&["io-pilot", "--len", "4"], "--len must be at least 8");
}

#[test]
fn io_pilot_zero_nak_retries_rejected() {
    assert_clean_usage_error(
        &["io-pilot", "--nak-retries", "0"],
        "--nak-retries must be at least 1",
    );
}

/// Sanity: a lossy loopback io-pilot run works end-to-end through the
/// binary and exits 0 with exactly-once delivery.
#[test]
fn io_pilot_lossy_loopback_runs_clean() {
    let out = mmt_sim(&[
        "io-pilot",
        "--messages",
        "100",
        "--loss",
        "0.05",
        "--seed",
        "3",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "lossy io-pilot run failed\nstderr: {}",
        stderr_of(&out)
    );
    assert!(stdout.contains("delivered 100/100"), "stdout: {stdout}");
}

#[test]
fn bench_unknown_scheduler_rejected() {
    assert_clean_usage_error(
        &["bench", "--scheduler", "fifo"],
        "--scheduler must be heap or wheel",
    );
}
