//! Property-style seeded loop tests at numeric boundaries: sequence
//! tracking across `u32::MAX`, the retransmission buffer stamping and
//! serving NAKs across the same boundary, and packet-arena free-list
//! invariants under randomized alloc/release interleavings.
//!
//! These are plain seeded loops (no external property-test crate): each
//! case derives its inputs from `SimRng`, so every failure reproduces
//! from the printed seed.

use mmt::dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
use mmt::netsim::{
    Bandwidth, Context, LinkSpec, Node, Packet, PacketArena, PortId, SimRng, Simulator, Time,
};
use mmt::protocol::buffer::{PORT_DAQ, PORT_WAN};
use mmt::protocol::{RetransmitBuffer, SeqTracker};
use mmt::wire::mmt::{ControlRepr, ExperimentId, MmtRepr, NakRange, NakRepr};
use mmt::wire::{EthernetAddress, Ipv4Address};

// ---------------------------------------------------------------------
// SeqTracker across u32::MAX
// ---------------------------------------------------------------------

const BOUNDARY: u64 = u32::MAX as u64;

#[test]
fn seqtracker_merges_ranges_across_u32_boundary() {
    // Record a window straddling u32::MAX in a seeded shuffle order; the
    // tracker must coalesce it into one interval regardless of order —
    // a u32 truncation anywhere would tear the range at the boundary.
    for seed in 1..=8u64 {
        let mut rng = SimRng::new(seed);
        let mut seqs: Vec<u64> = (BOUNDARY - 64..=BOUNDARY + 64).collect();
        // Fisher–Yates with the deterministic sim RNG.
        for i in (1..seqs.len()).rev() {
            let j = rng.next_bounded(i as u64 + 1) as usize;
            seqs.swap(i, j);
        }
        let mut t = SeqTracker::new();
        for &s in &seqs {
            assert!(t.record(s), "seed {seed}: seq {s} seen as duplicate");
        }
        assert_eq!(t.received_count(), 129);
        assert_eq!(t.gap_count(), 1, "only the leading [0, boundary-65] gap");
        assert_eq!(t.highest(), Some(BOUNDARY + 64));
        assert!(t.contains(BOUNDARY));
        assert!(t.contains(BOUNDARY + 1));
        // Everything below the window is one leading gap; nothing is
        // missing inside the window.
        let missing = t.missing_ranges(8);
        assert_eq!(missing.len(), 1, "seed {seed}");
        assert_eq!(missing[0].first, 0);
        assert_eq!(missing[0].last, BOUNDARY - 65);
        // Duplicates at the boundary are still deduplicated.
        assert!(!t.record(BOUNDARY));
        assert_eq!(t.duplicate_hits(), 1);
    }
}

#[test]
fn seqtracker_reports_gaps_that_straddle_the_boundary() {
    // Lose a run of packets exactly across u32::MAX and check the NAK
    // range reports it as one contiguous hole.
    let mut t = SeqTracker::new();
    for s in BOUNDARY - 10..BOUNDARY - 2 {
        t.record(s);
    }
    for s in BOUNDARY + 3..BOUNDARY + 10 {
        t.record(s);
    }
    let missing = t.missing_ranges(8);
    // Leading gap plus the straddling hole [boundary-2, boundary+2].
    assert_eq!(missing.len(), 2);
    assert_eq!(missing[1].first, BOUNDARY - 2);
    assert_eq!(missing[1].last, BOUNDARY + 2);
}

// ---------------------------------------------------------------------
// RetransmitBuffer stamping/serving across u32::MAX
// ---------------------------------------------------------------------

struct Sink;
impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
        ctx.deliver_local(pkt);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn exp() -> ExperimentId {
    ExperimentId::new(2, 0)
}

fn sensor_frame(index: u64) -> Packet {
    let mut payload = vec![0u8; 128];
    payload[..8].copy_from_slice(&index.to_be_bytes());
    Packet::new(build_eth_mmt_frame(
        EthernetAddress([2, 0, 0, 0, 0, 1]),
        EthernetAddress([2, 0, 0, 0, 0, 2]),
        &MmtRepr::data(exp()),
        &payload,
    ))
}

fn nak_frame(ranges: Vec<NakRange>) -> Packet {
    let ctrl = ControlRepr::Nak(NakRepr {
        requester: Ipv4Address::new(10, 0, 0, 8),
        requester_port: 47_000,
        ranges,
    })
    .emit_packet(exp());
    let repr = MmtRepr::parse(&ctrl).expect("emitted one line above");
    Packet::new(build_eth_mmt_frame(
        EthernetAddress([2, 0, 0, 0, 0, 8]),
        EthernetAddress([2, 0, 0, 0, 0, 2]),
        &repr,
        &ctrl[repr.header_len()..],
    ))
}

fn stamped_seq(pkt: &Packet) -> u64 {
    ParsedPacket::parse(pkt.bytes.clone(), 0)
        .mmt_repr()
        .and_then(|r| r.sequence())
        .expect("upgraded data frame carries a sequence")
}

#[test]
fn retransmit_buffer_stamps_and_serves_across_u32_boundary() {
    let mut sim = Simulator::new(1);
    let mut buffer = RetransmitBuffer::with_defaults(
        exp(),
        Ipv4Address::new(10, 0, 0, 5),
        1_000_000_000,
        1 << 20,
    );
    // Start the stamping cursor just below u32::MAX so the stream crosses
    // the boundary within a handful of packets.
    buffer.seed_sequence_cursor(BOUNDARY - 3);
    let buf = sim.add_node("dtn1", Box::new(buffer));
    let wan = sim.add_node("wan", Box::new(Sink));
    sim.add_oneway(
        buf,
        PORT_WAN,
        wan,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
    );
    for i in 0..8u64 {
        sim.inject(Time::from_micros(i), buf, PORT_DAQ, sensor_frame(i));
    }
    sim.run();
    let forwarded = sim.local_deliveries(wan);
    let seqs: Vec<u64> = forwarded.iter().map(|(_, p)| stamped_seq(p)).collect();
    let expect: Vec<u64> = (0..8).map(|i| BOUNDARY - 3 + i).collect();
    assert_eq!(
        seqs, expect,
        "stamping must continue monotonically past u32::MAX"
    );

    // NAK a range that straddles the boundary; every sequence must be
    // served from the store (no truncated-key misses).
    let before = forwarded.len();
    sim.inject(
        sim.now(),
        buf,
        PORT_WAN,
        nak_frame(vec![NakRange {
            first: BOUNDARY - 1,
            last: BOUNDARY + 1,
        }]),
    );
    sim.run();
    let got = sim.local_deliveries(wan);
    let reseqs: Vec<u64> = got[before..].iter().map(|(_, p)| stamped_seq(p)).collect();
    assert_eq!(reseqs, vec![BOUNDARY - 1, BOUNDARY, BOUNDARY + 1]);
    let b = sim.node_as::<RetransmitBuffer>(buf).expect("node type");
    assert_eq!(b.stats.retransmitted, 3);
    assert_eq!(b.stats.nak_misses, 0);
    assert_eq!(b.sequence_cursor(), BOUNDARY + 5, "cursor past the window");
}

#[test]
fn retransmit_buffer_evicts_oldest_across_u32_boundary() {
    // A capacity bound forces eviction while sequences cross u32::MAX:
    // the oldest (pre-boundary) sequences must be the ones evicted, and
    // NAKs for them must miss cleanly rather than resurrect stale data.
    let mut sim = Simulator::new(1);
    let mut buffer = RetransmitBuffer::with_defaults(
        exp(),
        Ipv4Address::new(10, 0, 0, 5),
        1_000_000_000,
        1_000, // room for ~3 upgraded frames
    );
    buffer.seed_sequence_cursor(BOUNDARY - 4);
    let buf = sim.add_node("dtn1", Box::new(buffer));
    let wan = sim.add_node("wan", Box::new(Sink));
    sim.add_oneway(
        buf,
        PORT_WAN,
        wan,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::ZERO),
    );
    for i in 0..10u64 {
        sim.inject(Time::from_micros(i), buf, PORT_DAQ, sensor_frame(i));
    }
    sim.run();
    let b = sim.node_as::<RetransmitBuffer>(buf).expect("node type");
    assert!(b.stats.evicted >= 5, "evicted {}", b.stats.evicted);
    let stored = b.stored_seqs();
    assert!(!stored.is_empty());
    // Whatever survived is the *newest* suffix — all post-boundary.
    assert!(
        stored.iter().all(|&s| s > BOUNDARY),
        "survivors must be the newest sequences, got {stored:?}"
    );
    // A NAK for the evicted pre-boundary packet is a miss, and the
    // surviving post-boundary ones are served.
    let before = sim.local_deliveries(wan).len();
    sim.inject(
        sim.now(),
        buf,
        PORT_WAN,
        nak_frame(vec![
            NakRange {
                first: BOUNDARY - 4,
                last: BOUNDARY - 4,
            },
            NakRange {
                first: stored[0],
                last: stored[0],
            },
        ]),
    );
    sim.run();
    let b = sim.node_as::<RetransmitBuffer>(buf).expect("node type");
    assert_eq!(b.stats.nak_misses, 1);
    assert_eq!(b.stats.retransmitted, 1);
    assert_eq!(sim.local_deliveries(wan).len(), before + 1);
}

// ---------------------------------------------------------------------
// Arena free-list invariants under seeded interleavings
// ---------------------------------------------------------------------

#[test]
fn arena_random_interleaving_preserves_invariants() {
    for seed in 1..=8u64 {
        let mut rng = SimRng::new(seed);
        let mut arena = PacketArena::with_capacity(8, 256);
        let mut live: Vec<(mmt::netsim::PacketRef, u8)> = Vec::new();
        let mut released: u64 = 0;
        for step in 0..2_000u32 {
            let fill = (step % 251) as u8;
            if live.is_empty() || rng.next_bounded(100) < 55 {
                let len = 1 + rng.next_bounded(512) as usize;
                let r = arena.alloc(len);
                let buf = arena.get_mut(r).expect("fresh ref is live");
                buf.iter_mut().for_each(|b| *b = fill);
                assert_eq!(buf.len(), len);
                live.push((r, fill));
            } else {
                let idx = rng.next_bounded(live.len() as u64) as usize;
                let (r, fill) = live.swap_remove(idx);
                // Contents survive untouched until release — no aliasing
                // between live slots.
                let view = arena.get(r).expect("live ref readable");
                assert!(view.iter().all(|&b| b == fill), "seed {seed} step {step}");
                assert!(arena.release(r), "live ref releases exactly once");
                released += 1;
                // The ref is dead immediately: reads fail, double release
                // is refused.
                assert!(arena.get(r).is_none(), "stale read after release");
                assert!(!arena.release(r), "double release must be refused");
            }
            assert_eq!(arena.live(), live.len(), "seed {seed} step {step}");
        }
        let stats = arena.stats();
        assert_eq!(stats.released, released);
        assert_eq!(
            stats.fresh + stats.reused,
            released + live.len() as u64,
            "seed {seed}: every alloc is either fresh or reused"
        );
        assert!(
            stats.reused > stats.fresh,
            "seed {seed}: a churning workload must mostly recycle slots \
             (reused {} vs fresh {})",
            stats.reused,
            stats.fresh
        );
        assert!(arena.capacity() >= arena.live());
    }
}

#[test]
fn arena_refs_from_before_reuse_never_alias_new_data() {
    let mut arena = PacketArena::new();
    let a = arena.alloc(16);
    arena.get_mut(a).expect("live")[0] = 0xAA;
    assert!(arena.release(a));
    // The slot is recycled for b; the old ref must not see b's data.
    let b = arena.alloc(16);
    arena.get_mut(b).expect("live")[0] = 0xBB;
    assert_eq!(a.index(), b.index(), "free list reuses the slot");
    assert_ne!(a.generation(), b.generation(), "generation bumped");
    assert!(arena.get(a).is_none(), "pre-reuse ref is inert");
    assert_eq!(arena.get(b).expect("live")[0], 0xBB);
}

#[test]
fn stale_packet_ref_into_encode_into_is_inert() {
    // The zero-copy wire path encodes headers straight into arena slot
    // buffers. A stale `PacketRef` (its slot released and re-leased to a
    // new tenant) must never become a write path into that tenant: the
    // generation check makes `get_mut` return `None`, so there is no
    // buffer to pass to `encode_into` at all, and the new tenant's bytes
    // survive untouched.
    let mut arena = PacketArena::new();
    let repr = MmtRepr::data(ExperimentId::new(2, 0)).with_sequence(9);
    let total = repr.header_len() + 32;

    let stale = arena.alloc(total);
    assert!(arena.release(stale));
    let tenant = arena.alloc(total);
    assert_eq!(stale.index(), tenant.index(), "slot re-leased");
    arena.get_mut(tenant).expect("live").fill(0x5A);

    // The only route from a stale ref to a buffer is `get_mut`, and it
    // is closed; a correct caller therefore skips the encode entirely.
    assert!(
        arena.get_mut(stale).is_none(),
        "stale ref must not yield the new tenant's buffer"
    );
    if let Some(buf) = arena.get_mut(stale) {
        repr.encode_into(buf).expect("sized");
        unreachable!("stale ref produced a live buffer");
    }
    assert!(
        arena.get(tenant).expect("live").iter().all(|&b| b == 0x5A),
        "tenant bytes must survive a stale-ref encode attempt"
    );

    // The live ref is the one that encodes — and only over the header
    // region, leaving the payload bytes as the tenant wrote them.
    let buf = arena.get_mut(tenant).expect("live");
    let written = repr.encode_into(buf).expect("buffer sized above");
    assert_eq!(written, repr.header_len());
    let view = arena.get(tenant).expect("live");
    assert!(
        view[written..].iter().all(|&b| b == 0x5A),
        "encode_into must not touch payload bytes"
    );
    let (decoded, payload) = MmtRepr::decode_from(view).expect("round trip");
    assert_eq!(decoded.sequence(), Some(9));
    assert_eq!(payload.len(), 32);
}
