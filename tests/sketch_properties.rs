//! Property tests for the O(1) quantile sketch against the exact sorted
//! reference: for every distribution we can throw at it, every estimate
//! must sit inside the documented one-sided error band
//! `exact ≤ estimate ≤ exact + ⌊exact/32⌋`, and merging must be
//! commutative down to the digest. Distributions are adversarial on
//! purpose — bursts, constants, and full-u64-range outliers stress the
//! octave boundaries where a log-bucketed sketch would round wrong.

use mmt::netsim::stats::quantile_sorted;
use mmt::telemetry::QuantileSketch;

/// SplitMix64 — the same tiny deterministic generator the simulator's RNG
/// is built on, re-derived locally so the test has no seed coupling.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The adversarial corpus: name plus sample vector.
fn distributions() -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = 0x5eed_u64;
    let uniform: Vec<u64> = (0..4096).map(|_| splitmix(&mut rng) >> 20).collect();
    let full_range: Vec<u64> = (0..4096).map(|_| splitmix(&mut rng)).collect();
    // Burst: a tight cluster of small latencies with a sparse huge tail,
    // the shape a paused link produces.
    let mut burst: Vec<u64> = (0..4000).map(|i| 50_000 + (i % 37)).collect();
    burst.extend((0..96).map(|i| 10_000_000_000 + i * 999_999_937));
    // Outliers: pin both extremes of the representable range.
    let mut outliers = vec![0u64, 1, 2, 31, 32, 33, u64::MAX - 1, u64::MAX];
    outliers.extend((0..256).map(|_| splitmix(&mut rng)));
    vec![
        ("uniform", uniform),
        ("full_range", full_range),
        ("burst", burst),
        ("constant", vec![123_456_789; 1000]),
        ("constant_small", vec![7; 500]),
        ("outliers", outliers),
        ("singleton", vec![u64::MAX]),
        ("ramp", (0..10_000).collect()),
    ]
}

fn sketch_of(values: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.record(v);
    }
    s
}

#[test]
fn estimates_stay_inside_the_documented_error_band() {
    let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
    for (name, values) in distributions() {
        let sketch = sketch_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in qs {
            let exact = quantile_sorted(&sorted, q).expect("non-empty");
            let est = sketch.quantile(q).expect("non-empty sketch");
            // One-sided band, evaluated in u128 so u64::MAX can't wrap.
            let lo = u128::from(exact);
            let hi = lo + lo / 32;
            assert!(
                (lo..=hi).contains(&u128::from(est)),
                "{name} q={q}: estimate {est} outside [{lo}, {hi}] (exact {exact})"
            );
        }
        assert_eq!(sketch.count(), values.len() as u64, "{name}: count");
        assert_eq!(
            sketch.min(),
            sorted.first().copied(),
            "{name}: exact minimum"
        );
        assert_eq!(
            sketch.max(),
            sorted.last().copied(),
            "{name}: exact maximum"
        );
    }
}

#[test]
fn relative_error_bound_matches_the_documented_constant() {
    // The band above is the integer form of MAX_RELATIVE_ERROR; make sure
    // the constant and the arithmetic can't drift apart silently.
    assert!((QuantileSketch::MAX_RELATIVE_ERROR - 1.0 / 32.0).abs() < 1e-12);
}

#[test]
fn merge_is_commutative_down_to_the_digest() {
    let dists = distributions();
    for i in 0..dists.len() {
        for j in (i + 1)..dists.len() {
            let (name_a, a) = &dists[i];
            let (name_b, b) = &dists[j];
            let mut ab = sketch_of(a);
            ab.merge(&sketch_of(b));
            let mut ba = sketch_of(b);
            ba.merge(&sketch_of(a));
            assert_eq!(
                ab.digest(),
                ba.digest(),
                "merge({name_a},{name_b}) digest differs from merge({name_b},{name_a})"
            );
            assert_eq!(ab.count(), (a.len() + b.len()) as u64);
            // The merged sketch must agree with recording the union.
            let mut union: Vec<u64> = a.clone();
            union.extend_from_slice(b);
            assert_eq!(ab.digest(), sketch_of(&union).digest());
        }
    }
}

#[test]
fn merge_with_empty_is_identity() {
    for (name, values) in distributions() {
        let mut s = sketch_of(&values);
        let before = s.digest();
        s.merge(&QuantileSketch::new());
        assert_eq!(s.digest(), before, "{name}: merging empty changed digest");
    }
}
