//! Seeded property tests for the dense flow-id allocator backing the
//! struct-of-arrays flow core (DESIGN.md §14).
//!
//! The allocator's contract has four load-bearing clauses:
//!
//! 1. a released slot's id becomes *stale* — every accessor returns
//!    `None`/`false` for it forever, even after the slot is reused;
//! 2. reuse never aliases: a reused slot hands out a *different* `FlowId`
//!    (same index, bumped generation) with freshly zeroed columns;
//! 3. the free list drains before the columns grow, and draining it to
//!    exhaustion then regrowing keeps every live id valid;
//! 4. the id space is `u32`-indexed and allocation fails *cleanly*
//!    (returns `None`, no panic, no wraparound) at the boundary.
//!
//! Each property is driven by a seeded [`SimRng`] interleaving checked
//! against a `BTreeMap` reference model, so failures replay exactly.

use std::collections::BTreeMap;

use mmt::netsim::SimRng;
use mmt::protocol::{FlowId, FlowTable, NO_RETX_SLOT};

/// Reference model: what a live flow's columns should read back.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ModelRow {
    seq: u64,
    remaining: u32,
    retx_slot: u32,
    occupancy: u32,
}

impl ModelRow {
    fn fresh() -> ModelRow {
        ModelRow {
            seq: 0,
            remaining: 0,
            retx_slot: NO_RETX_SLOT,
            occupancy: 0,
        }
    }
}

/// Check every live model row against the table and every stale id
/// against the full accessor surface.
fn check_against_model(
    table: &FlowTable,
    live: &BTreeMap<u64, (FlowId, ModelRow)>,
    stale: &[FlowId],
) {
    for (key, (id, row)) in live {
        assert!(table.contains(*id), "live id {key} must be present");
        assert_eq!(table.seq(*id), Some(row.seq), "seq of live id {key}");
        assert_eq!(
            table.remaining(*id),
            Some(row.remaining),
            "remaining of live id {key}"
        );
        assert_eq!(
            table.retx_slot(*id),
            Some(row.retx_slot),
            "retx slot of live id {key}"
        );
        assert_eq!(
            table.occupancy(*id),
            Some(row.occupancy),
            "occupancy of live id {key}"
        );
    }
    for id in stale {
        assert!(!table.contains(*id), "stale id must not be present");
        assert_eq!(table.seq(*id), None, "stale id must not read a seq");
        assert_eq!(table.mode_word(*id), None, "stale id must not read a mode");
        assert_eq!(
            table.occupancy(*id),
            None,
            "stale id must not read occupancy"
        );
    }
}

#[test]
fn random_interleavings_match_reference_model() {
    for seed in 1..=16u64 {
        let mut rng = SimRng::new(seed);
        let mut table = FlowTable::new();
        let mut live: BTreeMap<u64, (FlowId, ModelRow)> = BTreeMap::new();
        let mut stale: Vec<FlowId> = Vec::new();
        let mut next_key = 0u64;
        for step in 0..2_000u32 {
            match rng.next_bounded(10) {
                // Allocate (weighted so the table grows).
                0..=3 => {
                    let id = match table.alloc() {
                        Some(id) => id,
                        None => unreachable!("small tables never exhaust the u32 space"),
                    };
                    // Freshly allocated rows are zeroed with no retx slot.
                    assert_eq!(table.seq(id), Some(0), "seed {seed} step {step}");
                    assert_eq!(table.retx_slot(id), Some(NO_RETX_SLOT));
                    assert_eq!(table.occupancy(id), Some(0));
                    live.insert(next_key, (id, ModelRow::fresh()));
                    next_key += 1;
                }
                // Release a random live flow.
                4..=6 => {
                    if live.is_empty() {
                        continue;
                    }
                    let pick = rng.next_bounded(live.len() as u64);
                    let key = match live.keys().nth(pick as usize) {
                        Some(k) => *k,
                        None => unreachable!("pick is bounded by len"),
                    };
                    let (id, _) = match live.remove(&key) {
                        Some(v) => v,
                        None => unreachable!("key was just read from the map"),
                    };
                    assert!(table.release(id), "seed {seed} step {step}: live release");
                    assert!(!table.release(id), "double release must be inert");
                    stale.push(id);
                }
                // Mutate a random live flow's columns through the table
                // and mirror the write in the model.
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let pick = rng.next_bounded(live.len() as u64);
                    let key = match live.keys().nth(pick as usize) {
                        Some(k) => *k,
                        None => unreachable!("pick is bounded by len"),
                    };
                    let (id, row) = match live.get_mut(&key) {
                        Some(v) => v,
                        None => unreachable!("key was just read from the map"),
                    };
                    let v = rng.next_u64();
                    assert!(table.set_seq(*id, v));
                    assert!(table.set_remaining(*id, v as u32));
                    assert!(table.set_retx_slot(*id, (v % 3) as u32));
                    assert!(table.add_occupancy(*id, 1));
                    row.seq = v;
                    row.remaining = v as u32;
                    row.retx_slot = (v % 3) as u32;
                    row.occupancy += 1;
                }
            }
            if step % 256 == 0 {
                check_against_model(&table, &live, &stale);
            }
        }
        check_against_model(&table, &live, &stale);
        assert_eq!(table.live(), live.len(), "seed {seed}: live count");
        let total: u64 = live.values().map(|(_, r)| u64::from(r.occupancy)).sum();
        assert_eq!(table.occupancy_total(), total, "seed {seed}: occupancy sum");
        // Writes through stale ids must all refuse.
        for id in &stale {
            assert!(!table.set_seq(*id, 99));
            assert!(!table.add_occupancy(*id, 1));
        }
        check_against_model(&table, &live, &stale);
    }
}

#[test]
fn stale_ids_never_alias_reused_slots() {
    // A released id and the id that reuses its slot share an index but
    // never a generation: writes through the old id must not reach the
    // new flow's row, across many reuse rounds of the same slot.
    let mut table = FlowTable::new();
    let first = match table.alloc() {
        Some(id) => id,
        None => unreachable!("fresh table"),
    };
    let mut retired: Vec<FlowId> = Vec::new();
    let mut current = first;
    for round in 1..=100u64 {
        assert!(table.set_seq(current, round));
        assert!(table.release(current));
        retired.push(current);
        let next = match table.alloc() {
            Some(id) => id,
            None => unreachable!("free list has a slot"),
        };
        // Same dense slot, different identity, zeroed columns.
        assert_eq!(next.index(), first.index(), "free list reuses the slot");
        assert_ne!(next, current, "reuse must mint a fresh id");
        assert_eq!(table.seq(next), Some(0), "reused row starts zeroed");
        // Every retired generation is inert against the live row.
        for old in &retired {
            assert!(!table.set_seq(*old, u64::MAX));
            assert_eq!(table.seq(*old), None);
        }
        assert_eq!(table.seq(next), Some(0), "stale writes never landed");
        current = next;
    }
    assert_eq!(table.live(), 1);
    assert_eq!(table.stats().fresh, 1);
    assert_eq!(table.stats().reused, 100);
}

#[test]
fn free_list_exhaustion_and_regrowth_keep_ids_valid() {
    let mut rng = SimRng::new(9);
    let mut table = FlowTable::with_capacity(64);
    // Fill well past the pre-sized capacity, drain most of it, then
    // regrow past the previous high-water mark; survivors must read
    // back their column values through every phase.
    let mut live: Vec<(FlowId, u64)> = (0..256u64)
        .map(|i| {
            let id = match table.alloc() {
                Some(id) => id,
                None => unreachable!("well under u32 space"),
            };
            assert!(table.set_seq(id, i));
            (id, i)
        })
        .collect();
    for _ in 0..192 {
        let pick = rng.next_bounded(live.len() as u64) as usize;
        let (id, _) = live.swap_remove(pick);
        assert!(table.release(id));
    }
    assert_eq!(table.live(), 64);
    for (id, v) in &live {
        assert_eq!(table.seq(*id), Some(*v), "survivor keeps its seq");
    }
    // Regrowth: the first 192 allocations must come from the free list
    // (no column growth), the rest grow fresh rows.
    let before = table.capacity();
    for i in 0..192u64 {
        let id = match table.alloc() {
            Some(id) => id,
            None => unreachable!("free list then growth"),
        };
        assert!(table.set_seq(id, 1_000 + i));
        live.push((id, 1_000 + i));
    }
    assert_eq!(table.capacity(), before, "free list drains before growth");
    for i in 0..64u64 {
        let id = match table.alloc() {
            Some(id) => id,
            None => unreachable!("growth path"),
        };
        assert!(table.set_seq(id, 2_000 + i));
        live.push((id, 2_000 + i));
    }
    assert!(table.capacity() > before, "regrowth extends the columns");
    assert_eq!(table.live(), 320);
    for (id, v) in &live {
        assert_eq!(table.seq(*id), Some(*v), "id survives regrowth");
    }
    let s = table.stats();
    assert_eq!(s.fresh + s.reused, 256 + 192 + 64);
    assert_eq!(s.reused, 192, "every freed slot was reused before growth");
    assert_eq!(s.high_water, 320);
}

#[test]
fn id_space_boundary_is_a_clean_none() {
    // Park the dense index base just below u32::MAX: two allocations
    // fit, the third must fail cleanly — and keep failing — while the
    // live rows stay fully usable and releases re-enable allocation.
    let mut table = FlowTable::new().with_base_index(u32::MAX - 1);
    let a = match table.alloc() {
        Some(id) => id,
        None => unreachable!("index u32::MAX - 1 is addressable"),
    };
    let b = match table.alloc() {
        Some(id) => id,
        None => unreachable!("index u32::MAX is addressable"),
    };
    assert_eq!(table.alloc(), None, "index space exhausted");
    assert_eq!(table.alloc(), None, "exhaustion is sticky, not a panic");
    assert!(table.stats().exhausted >= 2);
    assert!(table.set_seq(a, 7) && table.set_seq(b, 9));
    assert_eq!(table.seq(a), Some(7));
    assert_eq!(table.seq(b), Some(9));
    // Releasing frees the slot for reuse even at the boundary.
    assert!(table.release(b));
    let b2 = match table.alloc() {
        Some(id) => id,
        None => unreachable!("freed boundary slot is reusable"),
    };
    assert_eq!(b2.index(), b.index());
    assert_ne!(b2, b, "boundary reuse still bumps the generation");
    assert_eq!(table.seq(b), None, "pre-release id is stale");
    assert_eq!(table.seq(b2), Some(0), "boundary reuse zeroes the row");
}

#[test]
fn generation_wraparound_still_rejects_the_previous_id() {
    // Generations are u32 and wrap; the allocator only guarantees that
    // the *immediately preceding* identity of a slot is never current
    // again right after a single release→alloc step. Drive one slot
    // through a few wraparound-adjacent cycles to pin the wrapping_add
    // semantics: old id stale, new id live, every cycle.
    let mut table = FlowTable::new();
    let mut id = match table.alloc() {
        Some(id) => id,
        None => unreachable!("fresh table"),
    };
    for _ in 0..1_000 {
        let prev = id;
        assert!(table.release(prev));
        id = match table.alloc() {
            Some(id) => id,
            None => unreachable!("slot cycles through the free list"),
        };
        assert!(table.contains(id));
        assert!(!table.contains(prev), "previous generation must be stale");
        assert_eq!(id.index(), prev.index());
        assert_eq!(id.generation(), prev.generation().wrapping_add(1));
    }
}
