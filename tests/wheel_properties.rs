//! Seeded property tests for the hierarchical timing wheel in
//! isolation, checked against a sorted-vec reference model.
//!
//! The wheel's contract (DESIGN.md §12): pop order is globally minimum
//! `(at, seq)` where `seq` is schedule order — FIFO within one
//! timestamp — cancel is O(1) and exact, and any u64 timestamp is
//! accepted, including slot-boundary, overflow-cascade, and `u64::MAX`
//! saturation cases. The reference model is too slow to ship but
//! obviously correct: a vec sorted by `(at, seq)`.

use mmt::netsim::wheel::{TimerWheel, HORIZON_TICKS, LEVELS, SLOTS, SLOT_NS};

/// Deterministic xorshift so every failure replays from the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Obviously-correct reference: keep everything in a vec, pop the
/// smallest `(at, seq)`.
#[derive(Default)]
struct RefModel {
    entries: Vec<(u64, u64, u32)>, // (at, seq, id)
    seq: u64,
}

impl RefModel {
    fn schedule(&mut self, at: u64, id: u32) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.entries.push((at, seq, id));
        seq
    }

    fn cancel(&mut self, seq: u64) -> Option<u32> {
        let pos = self.entries.iter().position(|&(_, s, _)| s == seq)?;
        Some(self.entries.remove(pos).2)
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let min = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, seq, _))| (at, seq))?
            .0;
        let (at, _, id) = self.entries.remove(min);
        Some((at, id))
    }
}

/// Drive wheel and model through one interleaved schedule/cancel/pop
/// schedule drawn from `seed`, with timestamps from `pick_at`.
fn differential_run(seed: u64, ops: usize, pick_at: impl Fn(&mut Rng) -> u64) {
    let mut rng = Rng(seed | 1);
    let mut wheel = TimerWheel::new();
    let mut model = RefModel::default();
    // Live tokens, kept in sync: model seq -> wheel token.
    let mut live = Vec::new();
    let mut next_id = 0u32;
    for step in 0..ops {
        match rng.next() % 10 {
            // 60% schedule, 20% cancel, 20% pop.
            0..=5 => {
                let at = pick_at(&mut rng);
                let id = next_id;
                next_id += 1;
                let token = wheel.schedule(at, id);
                let seq = model.schedule(at, id);
                live.push((seq, token));
            }
            6 | 7 => {
                if live.is_empty() {
                    continue;
                }
                let victim = (rng.next() as usize) % live.len();
                let (seq, token) = live.swap_remove(victim);
                let got = wheel.cancel(token);
                let want = model.cancel(seq);
                assert_eq!(got, want, "seed {seed} step {step}: cancel diverged");
                // Double-cancel must be inert.
                assert_eq!(wheel.cancel(token), None, "seed {seed}: stale token");
            }
            _ => {
                let got = wheel.pop();
                let want = model.pop();
                assert_eq!(got, want, "seed {seed} step {step}: pop diverged");
                if got.is_some() {
                    // Drop the popped entry's token; it is stale now and
                    // cancelling it later must be inert on both sides.
                    live.retain(|&(seq, _)| model.entries.iter().any(|&(_, s, _)| s == seq));
                }
            }
        }
        assert_eq!(wheel.len(), model.entries.len(), "seed {seed} step {step}");
    }
    // Drain: the tails must agree exactly.
    loop {
        let got = wheel.pop();
        let want = model.pop();
        assert_eq!(got, want, "seed {seed}: drain diverged");
        if got.is_none() {
            break;
        }
    }
    assert!(wheel.is_empty());
}

#[test]
fn random_interleavings_match_reference_model() {
    for seed in 1..=16u64 {
        // Mixed magnitudes: same-tick collisions, near times, far times.
        differential_run(seed, 600, |rng| match rng.next() % 4 {
            0 => rng.next() % 100,
            1 => rng.next() % (SLOT_NS * SLOTS as u64),
            2 => rng.next() % ((SLOT_NS * HORIZON_TICKS) >> 12),
            _ => rng.next(),
        });
    }
}

#[test]
fn slot_boundary_timestamps_match_reference_model() {
    // k·slot_ns ± 1 for k across every level width, the exact horizon,
    // horizon ± 1, and u64::MAX: the cases where a rounding slip in
    // tick math or level selection would misfile an event.
    let horizon_ns = HORIZON_TICKS.saturating_mul(SLOT_NS);
    for seed in 1..=8u64 {
        differential_run(seed.wrapping_mul(0x9E37_79B9), 400, |rng| {
            let k = rng.next() % (SLOTS as u64 * LEVELS as u64);
            let base = k.saturating_mul(SLOT_NS);
            match rng.next() % 8 {
                0 => base.saturating_sub(1),
                1 => base,
                2 => base + 1,
                3 => horizon_ns - 1,
                4 => horizon_ns,
                5 => horizon_ns + 1,
                6 => u64::MAX,
                _ => u64::MAX - (rng.next() % SLOT_NS),
            }
        });
    }
}

#[test]
fn fifo_within_one_tick() {
    // Events in the same tick (and the same nanosecond) must pop in
    // schedule order, even when scheduled out of timestamp order.
    let mut wheel = TimerWheel::new();
    let at = 5 * SLOT_NS + 3;
    for id in 0..64u32 {
        // Interleave two timestamps inside one tick plus one equal
        // timestamp: ordering is (at, seq), so equal `at` keeps FIFO.
        let t = if id % 2 == 0 { at } else { at + 1 };
        wheel.schedule(t, id);
    }
    let mut popped = Vec::new();
    while let Some((t, id)) = wheel.pop() {
        popped.push((t, id));
    }
    let mut expect: Vec<(u64, u32)> = (0..64u32)
        .map(|id| (if id % 2 == 0 { at } else { at + 1 }, id))
        .collect();
    expect.sort_by_key(|&(t, id)| (t, id)); // schedule order == id order here
    assert_eq!(
        popped, expect,
        "same-tick events must stay FIFO per timestamp"
    );
}

#[test]
fn overflow_cascade_preserves_order() {
    // Schedule far beyond every wheel level, forcing the overflow list,
    // interleaved with near events; cascading must never reorder.
    let mut wheel = TimerWheel::new();
    let far = HORIZON_TICKS.saturating_mul(SLOT_NS).saturating_mul(3);
    let mut expect = Vec::new();
    for i in 0..200u32 {
        let at = match i % 4 {
            0 => u64::from(i) * 17,
            1 => far + u64::from(i),
            2 => far * 2 + u64::from(i),
            _ => SLOT_NS * u64::from(i % 50),
        };
        wheel.schedule(at, i);
        expect.push((at, u64::from(i), i));
    }
    expect.sort_by_key(|&(at, seq, _)| (at, seq));
    let mut got = Vec::new();
    while let Some((at, id)) = wheel.pop() {
        got.push((at, id));
    }
    let expect: Vec<(u64, u32)> = expect.into_iter().map(|(at, _, id)| (at, id)).collect();
    assert_eq!(got, expect, "overflow cascade reordered events");
}

#[test]
fn saturation_at_u64_max_is_poppable() {
    let mut wheel = TimerWheel::new();
    wheel.schedule(u64::MAX, 1u32);
    wheel.schedule(u64::MAX - 1, 2u32);
    wheel.schedule(u64::MAX, 3u32);
    wheel.schedule(0, 4u32);
    assert_eq!(wheel.pop(), Some((0, 4)));
    assert_eq!(wheel.pop(), Some((u64::MAX - 1, 2)));
    assert_eq!(wheel.pop(), Some((u64::MAX, 1)), "FIFO at saturation");
    assert_eq!(wheel.pop(), Some((u64::MAX, 3)));
    assert_eq!(wheel.pop(), None);
}

#[test]
fn schedule_behind_the_cursor_pops_next() {
    // Popping advances the cursor; a later schedule at an earlier time
    // must still surface immediately (the sim asserts monotonic time at
    // a higher layer — the wheel itself must not lose the event).
    let mut wheel = TimerWheel::new();
    wheel.schedule(10 * SLOT_NS, 1u32);
    assert_eq!(wheel.pop(), Some((10 * SLOT_NS, 1)));
    wheel.schedule(3, 2u32);
    wheel.schedule(10 * SLOT_NS, 3u32);
    assert_eq!(
        wheel.pop(),
        Some((3, 2)),
        "behind-cursor event surfaced late"
    );
    assert_eq!(wheel.pop(), Some((10 * SLOT_NS, 3)));
}
