//! Telemetry determinism regression: two pilot runs with the same seed
//! must export byte-identical metrics and traces. This is the property
//! that makes the telemetry layer usable for golden-file comparisons and
//! cross-machine debugging (same binary + seed ⇒ same bytes anywhere).

use mmt::netsim::Time;
use mmt::pilot::{Pilot, PilotConfig};
use mmt::telemetry::{prometheus, trace};

fn run_once(seed: u64) -> (String, String, String) {
    let mut cfg = PilotConfig::default_run();
    cfg.message_count = 400;
    cfg.seed = seed;
    let mut pilot = Pilot::build(cfg);
    pilot.enable_trace();
    pilot.run(Time::from_secs(30));
    assert!(pilot.is_complete());
    let prom = prometheus::render(&pilot.metrics());
    let records = pilot.trace_records();
    (
        prom,
        trace::to_jsonl(&records),
        trace::to_chrome_trace(&records),
    )
}

#[test]
fn same_seed_same_bytes() {
    let (prom_a, jsonl_a, chrome_a) = run_once(42);
    let (prom_b, jsonl_b, chrome_b) = run_once(42);
    assert!(!prom_a.is_empty() && !jsonl_a.is_empty());
    assert_eq!(prom_a, prom_b, "Prometheus export must be byte-identical");
    assert_eq!(jsonl_a, jsonl_b, "JSONL trace must be byte-identical");
    assert_eq!(chrome_a, chrome_b, "Chrome trace must be byte-identical");
}

#[test]
fn different_seed_different_trace() {
    // Sanity check that the comparison above is not vacuous: the WAN loss
    // RNG depends on the seed, so distinct seeds must disturb the trace.
    let (_, jsonl_a, _) = run_once(1);
    let (_, jsonl_b, _) = run_once(2);
    assert_ne!(jsonl_a, jsonl_b, "seed must influence the run");
}

#[test]
fn exports_are_well_formed() {
    let (prom, jsonl, chrome) = run_once(7);
    // Prometheus: every non-comment line is `name{labels} value`.
    for line in prom.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("value separator");
        assert!(!series.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "unparsable value in {line}");
    }
    // Representative series from every instrumented layer.
    for needle in [
        "mmt_sim_events_total",
        "mmt_link_tx_packets_total",
        "mmt_sender_sent_total",
        "mmt_buffer_forwarded_total",
        "mmt_element_processed_total",
        "mmt_table_hits_total",
        "mmt_receiver_delivered_total",
        "mmt_receiver_e2e_latency_ns",
    ] {
        assert!(prom.contains(needle), "missing {needle}");
    }
    // JSONL: one object per line.
    assert!(jsonl.lines().count() > 100);
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    // Chrome: a single JSON object with the traceEvents array.
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.contains("\"displayTimeUnit\":\"ns\""));
}
