//! Telemetry determinism regression: two pilot runs with the same seed
//! must export byte-identical metrics and traces. This is the property
//! that makes the telemetry layer usable for golden-file comparisons and
//! cross-machine debugging (same binary + seed ⇒ same bytes anywhere).

use mmt::netsim::{FaultSpec, LossModel, PeriodicOutage, Time};
use mmt::pilot::experiments::failover;
use mmt::pilot::{Pilot, PilotConfig};
use mmt::protocol::ModeController;
use mmt::telemetry::{prometheus, trace};

fn run_once(seed: u64) -> (String, String, String) {
    run_with_fault(seed, FaultSpec::none())
}

fn run_with_fault(seed: u64, fault: FaultSpec) -> (String, String, String) {
    let mut cfg = PilotConfig::default_run();
    cfg.message_count = 400;
    cfg.seed = seed;
    if !fault.is_none() {
        cfg.wan_loss = LossModel::Random(1e-3);
        cfg.wan_fault = fault;
        cfg.retx_holdoff = Time::from_millis(2);
    }
    let mut pilot = Pilot::build(cfg);
    pilot.enable_trace();
    pilot.run(Time::from_secs(120));
    assert!(pilot.is_complete());
    let prom = prometheus::render(&pilot.metrics());
    let records = pilot.trace_records();
    (
        prom,
        trace::to_jsonl(&records),
        trace::to_chrome_trace(&records),
    )
}

/// A fault mix covering every injector: reorder, duplication, jitter,
/// flap, and control-plane loss, layered over 10⁻³ corruption loss.
fn chaos_fault() -> FaultSpec {
    FaultSpec::none()
        .with_reorder(0.05, Time::from_micros(500))
        .with_duplication(0.02, Time::from_micros(50))
        .with_jitter(Time::from_micros(100))
        .with_scheduled_outage(PeriodicOutage {
            first_down: Time::from_micros(200),
            down_for: Time::from_millis(2),
            period: Time::from_millis(50),
        })
        .with_control_loss(0.2)
}

#[test]
fn same_seed_same_bytes() {
    let (prom_a, jsonl_a, chrome_a) = run_once(42);
    let (prom_b, jsonl_b, chrome_b) = run_once(42);
    assert!(!prom_a.is_empty() && !jsonl_a.is_empty());
    assert_eq!(prom_a, prom_b, "Prometheus export must be byte-identical");
    assert_eq!(jsonl_a, jsonl_b, "JSONL trace must be byte-identical");
    assert_eq!(chrome_a, chrome_b, "Chrome trace must be byte-identical");
}

#[test]
fn different_seed_different_trace() {
    // Sanity check that the comparison above is not vacuous: the WAN loss
    // RNG depends on the seed, so distinct seeds must disturb the trace.
    let (_, jsonl_a, _) = run_once(1);
    let (_, jsonl_b, _) = run_once(2);
    assert_ne!(jsonl_a, jsonl_b, "seed must influence the run");
}

/// The determinism property must survive the fault layer: injected
/// reordering, duplication, flaps, and control loss all draw from seeded
/// streams, so two identical faulted runs export byte-identical telemetry.
#[test]
fn same_seed_same_bytes_under_faults() {
    let (prom_a, jsonl_a, chrome_a) = run_with_fault(42, chaos_fault());
    let (prom_b, jsonl_b, chrome_b) = run_with_fault(42, chaos_fault());
    assert!(!prom_a.is_empty() && !jsonl_a.is_empty());
    assert_eq!(
        prom_a, prom_b,
        "faulted Prometheus export must be byte-identical"
    );
    assert_eq!(
        jsonl_a, jsonl_b,
        "faulted JSONL trace must be byte-identical"
    );
    assert_eq!(
        chrome_a, chrome_b,
        "faulted Chrome trace must be byte-identical"
    );
}

/// Faulted runs surface the fault and recovery-hardening counters in the
/// Prometheus export, and the fault events appear in the JSONL trace.
#[test]
fn faulted_exports_carry_fault_series() {
    let (prom, jsonl, _) = run_with_fault(7, chaos_fault());
    for needle in [
        "mmt_link_flap_drops_total",
        "mmt_link_control_drops_total",
        "mmt_link_dup_injected_total",
        "mmt_link_reordered_total",
        "mmt_receiver_nak_retries_exhausted_total",
        "mmt_receiver_dup_after_recovery_total",
        "mmt_buffer_retx_suppressed_total",
    ] {
        assert!(prom.contains(needle), "missing {needle}");
    }
    // At least one fault class must actually have fired in the trace.
    assert!(
        jsonl.contains("\"flap_drop\"") || jsonl.contains("\"dup_inject\""),
        "faulted trace carries no fault events"
    );
}

/// Regression for the D1 bug class (mmt-lint): the retransmit buffer,
/// receiver gap/NAK books, and relay/element pending tables are ordered
/// maps, so iterating them — as `export_metrics` now does for the
/// order-sensitive `mmt_buffer_stored_seq_digest` gauge — must yield
/// byte-identical output across two in-process runs. With a hash map a
/// per-instance `RandomState` would scramble the fold below even within
/// one process.
#[test]
fn map_iteration_order_is_deterministic_across_runs() {
    let observe = || {
        let mut cfg = PilotConfig::default_run();
        cfg.message_count = 400;
        cfg.seed = 42;
        cfg.wan_loss = LossModel::Random(5e-3);
        cfg.wan_fault = chaos_fault();
        cfg.retx_holdoff = Time::from_millis(2);
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(120));
        assert!(pilot.is_complete());
        let stored = pilot
            .sim
            .node_as::<mmt::protocol::RetransmitBuffer>(pilot.dtn1)
            .expect("dtn1 is the retransmit buffer")
            .stored_seqs();
        (prometheus::render(&pilot.metrics()), stored)
    };
    let (prom_a, stored_a) = observe();
    let (prom_b, stored_b) = observe();
    // The loss layer forces retransmission state, so the digest reflects
    // a non-trivial iteration.
    assert!(prom_a.contains("mmt_buffer_stored_seq_digest"));
    assert_eq!(prom_a, prom_b, "map-derived export must be byte-identical");
    assert_eq!(stored_a, stored_b, "map iteration order must be stable");
    let mut sorted = stored_a.clone();
    sorted.sort_unstable();
    assert_eq!(stored_a, sorted, "ordered map iterates in key order");
}

/// A crash + restart + closed-loop-adaptation run: the crash drops, the
/// restart, and every controller-driven mode transition all land in the
/// exports — byte-identically across two runs of the same seed.
fn run_crash_adaptive(seed: u64) -> (String, String) {
    let mut cfg = PilotConfig::default_run();
    cfg.message_count = 400;
    cfg.seed = seed;
    cfg.wan_loss = LossModel::Random(1e-2);
    cfg.retx_holdoff = Time::from_millis(2);
    cfg.receiver_max_nak_retries = Some(6);
    cfg.standby = true;
    cfg.crash_node = Some("dtn1".to_string());
    cfg.crash_at = Time::from_millis(6);
    cfg.restart_at = Some(Time::from_millis(20));
    let mut pilot = Pilot::build(cfg);
    pilot.enable_trace();
    let mut controller = ModeController::new(failover::controller_config());
    pilot.run_adaptive(Time::from_secs(120), Time::from_millis(5), &mut controller);
    assert!(pilot.is_complete());
    let records = pilot.trace_records();
    (
        prometheus::render(&pilot.metrics()),
        trace::to_jsonl(&records),
    )
}

#[test]
fn crash_failover_exports_byte_identical() {
    let (prom_a, jsonl_a) = run_crash_adaptive(3);
    let (prom_b, jsonl_b) = run_crash_adaptive(3);
    assert_eq!(
        prom_a, prom_b,
        "crash/adaptation Prometheus export must be byte-identical"
    );
    assert_eq!(
        jsonl_a, jsonl_b,
        "crash/adaptation JSONL trace must be byte-identical"
    );
}

/// The failover run surfaces the crash/restart/mode-change series in the
/// Prometheus export and the matching event kinds in the trace.
#[test]
fn crash_failover_exports_carry_transition_series() {
    let (prom, jsonl) = run_crash_adaptive(3);
    for needle in [
        "mmt_node_crashes_total",
        "mmt_node_restarts_total",
        "mmt_node_crashed_drops_total",
        "mmt_buffer_occupancy_highwater",
        "mmt_standby_served_total",
        "mmt_standby_active",
    ] {
        assert!(prom.contains(needle), "missing {needle}");
    }
    for kind in ["\"node_crash\"", "\"node_restart\"", "\"mode_change\""] {
        assert!(jsonl.contains(kind), "trace missing {kind} events");
    }
}

#[test]
fn exports_are_well_formed() {
    let (prom, jsonl, chrome) = run_once(7);
    // Prometheus: every non-comment line is `name{labels} value`.
    for line in prom.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("value separator");
        assert!(!series.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "unparsable value in {line}");
    }
    // Representative series from every instrumented layer.
    for needle in [
        "mmt_sim_events_total",
        "mmt_link_tx_packets_total",
        "mmt_sender_sent_total",
        "mmt_buffer_forwarded_total",
        "mmt_element_processed_total",
        "mmt_table_hits_total",
        "mmt_receiver_delivered_total",
        "mmt_receiver_e2e_latency_ns",
    ] {
        assert!(prom.contains(needle), "missing {needle}");
    }
    // JSONL: one object per line.
    assert!(jsonl.lines().count() > 100);
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    // Chrome: a single JSON object with the traceEvents array.
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.contains("\"displayTimeUnit\":\"ns\""));
}
