//! Driver equivalence: the *same* sans-io machines, driven once by the
//! virtual-time simulator and once by the real-time UDP plane, must
//! deliver the same messages in the same order.
//!
//! The comparison runs over a lossless path (sim links without loss; io
//! loopback with the fault injector off) so wall-clock jitter cannot
//! change *what* is delivered — only when. The digest is therefore taken
//! over the core-level delivery log — `(msg_index, seq)` pairs in arrival
//! order — not over any time-stamped telemetry.

use mmt::io::{run_loopback, IoPilotConfig};
use mmt::netsim::{Bandwidth, LinkSpec, Simulator, Time};
use mmt::protocol::buffer::{PORT_DAQ, PORT_WAN};
use mmt::protocol::{MmtReceiver, MmtSender, ReceiverConfig, RetransmitBuffer, SenderConfig};
use mmt::wire::mmt::ExperimentId;
use mmt::wire::Ipv4Address;

const MESSAGES: u64 = 120;
const LEN: usize = 512;
const GAP: Time = Time::from_micros(20);
const SEED: u64 = 11;

struct SimOutcome {
    delivered: u64,
    lost: u64,
    duplicates: u64,
    digest: u64,
    log: Vec<(u64, Option<u64>)>,
}

/// The sim side of the comparison: sender → DTN → receiver over
/// lossless, low-latency links, with node configs matching the io
/// pilot's builders.
fn run_sim() -> SimOutcome {
    let exp = ExperimentId::new(2, 0);
    let mut sim = Simulator::new(SEED);
    let sensor = sim.add_node(
        "sensor",
        Box::new(MmtSender::new(SenderConfig::regular(
            exp,
            LEN,
            GAP,
            MESSAGES as usize,
        ))),
    );
    let dtn = sim.add_node(
        "dtn1",
        Box::new(RetransmitBuffer::with_defaults(
            exp,
            Ipv4Address::new(10, 0, 0, 5),
            Time::from_secs(2).as_nanos(),
            1 << 30,
        )),
    );
    let mut rcfg = ReceiverConfig::wan_defaults(exp, Ipv4Address::new(10, 0, 0, 8));
    rcfg.expect_messages = Some(MESSAGES);
    let receiver = sim.add_node("receiver", Box::new(MmtReceiver::new(rcfg)));
    let fast = LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(5));
    // `connect` wires both directions, so the receiver's NAK path back
    // to the DTN rides the same WAN link spec.
    sim.connect(sensor, 0, dtn, PORT_DAQ, fast);
    sim.connect(dtn, PORT_WAN, receiver, 0, fast);
    sim.run_until(Time::from_secs(5));
    let rx = sim.node_as::<MmtReceiver>(receiver).expect("receiver");
    let log = rx
        .log()
        .iter()
        .map(|m| (m.msg_index, m.seq))
        .collect::<Vec<_>>();
    SimOutcome {
        delivered: rx.stats.delivered,
        lost: rx.stats.lost,
        duplicates: rx.stats.duplicates,
        digest: rx.delivery_digest(),
        log,
    }
}

fn io_config() -> IoPilotConfig {
    let mut cfg = IoPilotConfig::defaults();
    cfg.messages = MESSAGES;
    cfg.message_len = LEN;
    cfg.gap = GAP;
    cfg.loss = 0.0;
    cfg.dup = 0.0;
    cfg.delay = Time::ZERO;
    cfg.seed = SEED;
    cfg
}

#[test]
fn sim_and_io_drivers_deliver_identical_sequences() {
    let sim = run_sim();
    assert_eq!(sim.delivered, MESSAGES, "sim driver must be lossless here");
    assert_eq!(sim.lost, 0);
    assert_eq!(sim.duplicates, 0);

    let report = run_loopback(&io_config()).expect("io loopback run");
    assert!(report.completed, "io driver must complete: {report:?}");

    // Conservation and exactly-once on the real path.
    assert_eq!(report.delivered, MESSAGES);
    assert_eq!(report.lost, 0);
    assert_eq!(report.duplicates, 0);
    assert_eq!(report.naks_sent, 0, "lossless loopback needs no recovery");

    // The heart of the test: byte-identical delivery logs.
    assert_eq!(
        report.delivery_digest, sim.digest,
        "sim and io drivers disagreed on the delivered (msg_index, seq) sequence\nsim log head: {:?}",
        &sim.log[..sim.log.len().min(5)]
    );
}

#[test]
fn sim_delivery_log_shape_is_the_expected_identity() {
    // Belt and braces for the digest above: the lossless sim log is the
    // identity mapping (message i ↔ sequence i, in order), so a matching
    // io digest really does mean "same messages, same order".
    let log = run_sim().log;
    assert_eq!(log.len(), MESSAGES as usize);
    for (i, (msg_index, seq)) in log.iter().enumerate() {
        assert_eq!(*msg_index, i as u64);
        assert_eq!(*seq, Some(i as u64));
    }
}

#[test]
fn io_driver_runs_are_reproducible_at_the_delivery_level() {
    // Wall-clock timing varies run to run; the delivered sequence must
    // not. Two lossless runs agree with each other (and with the sim,
    // per the test above).
    let a = run_loopback(&io_config()).expect("first run");
    let b = run_loopback(&io_config()).expect("second run");
    assert_eq!(a.delivery_digest, b.delivery_digest);
    assert_eq!(a.delivered, b.delivered);
}
