//! Golden-corpus wire tests: canned MMT frames under `tests/corpus/`.
//!
//! Every `data_*.bin` / `ctrl_*.bin` file must (1) byte-match what the
//! current emitters produce for its canonical description — catching
//! silent wire-format drift — and (2) survive a parse → re-emit round
//! trip byte-exactly. Every `bad_*.bin` file must parse to `Err` without
//! panicking.
//!
//! The corpus is regenerated from the canonical descriptions with
//! `cargo test --test wire_corpus -- --ignored regenerate_corpus`.

use std::path::PathBuf;

use mmt::wire::mmt::{
    BackpressureRepr, ControlRepr, DeadlineExceededRepr, ExperimentId, Features, MmtRepr,
    ModeChangeRepr, NakRange, NakRepr,
};
use mmt::wire::Ipv4Address;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn exp() -> ExperimentId {
    ExperimentId::new(2, 0)
}

/// The canonical well-formed corpus: (file name, frame bytes).
fn good_entries() -> Vec<(&'static str, Vec<u8>)> {
    let payload: Vec<u8> = (0u8..64).collect();
    let data = |repr: MmtRepr| repr.emit_with_payload(&payload);
    let ctrl = |repr: ControlRepr| repr.emit_packet(exp());
    vec![
        ("data_plain.bin", data(MmtRepr::data(exp()))),
        (
            "data_empty_payload.bin",
            MmtRepr::data(exp()).emit_with_payload(&[]),
        ),
        ("data_seq.bin", data(MmtRepr::data(exp()).with_sequence(7))),
        (
            "data_seq_u32_boundary.bin",
            data(MmtRepr::data(exp()).with_sequence(u64::from(u32::MAX) + 1)),
        ),
        (
            "data_seq_u64_max.bin",
            data(MmtRepr::data(exp()).with_sequence(u64::MAX)),
        ),
        (
            "data_seq_retransmit.bin",
            data(
                MmtRepr::data(exp())
                    .with_sequence(42)
                    .with_retransmit(Ipv4Address::new(10, 0, 0, 5), 47_000),
            ),
        ),
        (
            "data_timeliness.bin",
            data(
                MmtRepr::data(exp()).with_timeliness(1_000_000_000, Ipv4Address::new(10, 0, 0, 9)),
            ),
        ),
        (
            "data_age_fresh.bin",
            data(MmtRepr::data(exp()).with_age(12_345, false)),
        ),
        (
            "data_age_aged.bin",
            data(MmtRepr::data(exp()).with_age(99_999_999, true)),
        ),
        (
            "data_pacing.bin",
            data(MmtRepr::data(exp()).with_pacing(100_000)),
        ),
        (
            "data_backpressure.bin",
            data(MmtRepr::data(exp()).with_backpressure(64)),
        ),
        (
            "data_priority.bin",
            data(MmtRepr::data(exp()).with_priority(3)),
        ),
        (
            "data_flags_acknak.bin",
            data(MmtRepr::data(exp()).with_flags(Features::ACK_NAK)),
        ),
        (
            "data_kitchen_sink.bin",
            data(
                MmtRepr::data(exp())
                    .with_sequence(0xDEAD_BEEF)
                    .with_retransmit(Ipv4Address::new(192, 168, 1, 1), 9000)
                    .with_timeliness(123_456_789, Ipv4Address::new(192, 168, 1, 2))
                    .with_age(777, true)
                    .with_pacing(100_000)
                    .with_backpressure(32)
                    .with_priority(1)
                    .with_flags(Features::ACK_NAK.union(Features::DUPLICATED)),
            ),
        ),
        (
            "ctrl_nak_single.bin",
            ctrl(ControlRepr::Nak(NakRepr {
                requester: Ipv4Address::new(10, 0, 0, 8),
                requester_port: 47_000,
                ranges: vec![NakRange { first: 2, last: 4 }],
            })),
        ),
        (
            "ctrl_nak_multi.bin",
            ctrl(ControlRepr::Nak(NakRepr {
                requester: Ipv4Address::new(10, 0, 0, 8),
                requester_port: 47_000,
                ranges: vec![
                    NakRange { first: 0, last: 0 },
                    NakRange {
                        first: u64::from(u32::MAX) - 1,
                        last: u64::from(u32::MAX) + 1,
                    },
                    NakRange {
                        first: u64::MAX - 1,
                        last: u64::MAX,
                    },
                ],
            })),
        ),
        (
            "ctrl_deadline_exceeded.bin",
            ctrl(ControlRepr::DeadlineExceeded(DeadlineExceededRepr {
                sequence: 42,
                deadline_ns: 50_000_000,
                observed_age_ns: 61_000_000,
                reporter: Ipv4Address::new(10, 0, 0, 7),
            })),
        ),
        (
            "ctrl_backpressure.bin",
            ctrl(ControlRepr::Backpressure(BackpressureRepr {
                level: 1,
                window: 128,
                origin: Ipv4Address::new(10, 0, 0, 5),
            })),
        ),
        (
            "ctrl_modechange_set_source.bin",
            ctrl(ControlRepr::ModeChange(ModeChangeRepr {
                config_id: 0,
                features: Features::SEQUENCE
                    .union(Features::RETRANSMIT)
                    .union(Features::ACK_NAK),
                retransmit_source: Ipv4Address::new(10, 0, 0, 6),
                retransmit_port: 47_000,
                window: 0,
            })),
        ),
        (
            "ctrl_modechange_clear.bin",
            ctrl(ControlRepr::ModeChange(ModeChangeRepr {
                config_id: 0,
                features: Features::EMPTY,
                retransmit_source: Ipv4Address::UNSPECIFIED,
                retransmit_port: 0,
                window: 16,
            })),
        ),
    ]
}

/// Malformed variants derived from the canonical frames: every one must
/// produce `Err`, never a panic or a silently wrong parse.
fn bad_entries() -> Vec<(&'static str, Vec<u8>)> {
    let sink = good_entries()
        .iter()
        .find(|(n, _)| *n == "data_kitchen_sink.bin")
        .map(|(_, b)| b.clone())
        .unwrap_or_default();
    let nak = good_entries()
        .iter()
        .find(|(n, _)| *n == "ctrl_nak_single.bin")
        .map(|(_, b)| b.clone())
        .unwrap_or_default();
    let mut unknown_features = sink.clone();
    // Set an undefined feature bit (bit 23, far above `ALL_KNOWN`) in the
    // big-endian 24-bit config-data field at bytes 1..4.
    unknown_features[1] |= 0x80;
    let mut bad_ctrl_type = nak.clone();
    bad_ctrl_type[3] = 0xEE; // config-data LSB carries the control type
    let mut truncated_nak = nak.clone();
    truncated_nak.truncate(nak.len().saturating_sub(5)); // tear mid-range
    vec![
        ("bad_empty.bin", Vec::new()),
        ("bad_truncated_core.bin", sink[..6].to_vec()),
        // Core header intact, extension region cut short.
        ("bad_truncated_ext.bin", sink[..20].to_vec()),
        ("bad_unknown_features.bin", unknown_features),
        ("bad_ctrl_unknown_type.bin", bad_ctrl_type),
        ("bad_ctrl_truncated_body.bin", truncated_nak),
    ]
}

fn read_corpus_file(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "corpus file {} unreadable ({e}); regenerate with \
             `cargo test --test wire_corpus -- --ignored regenerate_corpus`",
            path.display()
        )
    })
}

#[test]
fn corpus_matches_current_emitters() {
    for (name, canonical) in good_entries() {
        let on_disk = read_corpus_file(name);
        assert_eq!(
            on_disk, canonical,
            "{name}: committed corpus diverged from the current emitter \
             (wire-format drift)"
        );
    }
}

#[test]
fn corpus_data_frames_round_trip_byte_exactly() {
    let mut checked = 0usize;
    for (name, _) in good_entries() {
        if !name.starts_with("data_") {
            continue;
        }
        let bytes = read_corpus_file(name);
        let repr = MmtRepr::parse(&bytes).unwrap_or_else(|e| panic!("{name}: parse failed: {e:?}"));
        assert!(!repr.is_control(), "{name}: data frame misclassified");
        let reemitted = repr.emit_with_payload(&bytes[repr.header_len()..]);
        assert_eq!(reemitted, bytes, "{name}: re-emit must be byte-exact");
        checked += 1;
    }
    assert!(checked >= 10, "corpus should cover the data-frame space");
}

#[test]
fn corpus_control_frames_round_trip_byte_exactly() {
    let mut checked = 0usize;
    for (name, _) in good_entries() {
        if !name.starts_with("ctrl_") {
            continue;
        }
        let bytes = read_corpus_file(name);
        let (experiment, repr) = ControlRepr::parse_packet(&bytes)
            .unwrap_or_else(|e| panic!("{name}: parse failed: {e:?}"));
        assert_eq!(experiment, exp(), "{name}: experiment id");
        let reemitted = repr.emit_packet(experiment);
        assert_eq!(reemitted, bytes, "{name}: re-emit must be byte-exact");
        checked += 1;
    }
    assert!(checked >= 6, "corpus should cover every control type");
}

#[test]
fn corpus_malformed_frames_err_without_panicking() {
    for (name, _) in bad_entries() {
        let bytes = read_corpus_file(name);
        // Neither parser may panic; the relevant one must reject the
        // frame. Control bodies are opaque to the header-level parser, so
        // `bad_ctrl_*` frames are judged by the control parser.
        let header = MmtRepr::parse(&bytes);
        let control = ControlRepr::parse_packet(&bytes);
        if name.starts_with("bad_ctrl_") {
            assert!(
                control.is_err(),
                "{name}: malformed control frame parsed cleanly: {control:?}"
            );
        } else {
            assert!(
                header.is_err(),
                "{name}: malformed frame parsed cleanly: {header:?}"
            );
        }
    }
}

#[test]
fn corpus_is_complete_on_disk() {
    let expected = good_entries().len() + bad_entries().len();
    let on_disk = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "bin"))
        .count();
    assert_eq!(
        on_disk, expected,
        "corpus dir out of sync with the canonical entry list"
    );
    assert!(expected >= 26, "corpus should stay ~20 good + malformed");
}

#[test]
fn corpus_zero_copy_paths_match_allocating_paths() {
    // Every golden frame — data *and* control — must behave identically
    // through the zero-copy `encode_into`/`decode_from` pair and the
    // allocating `parse`/`emit_with_payload` pair. This closes the
    // corpus suite's allocating-only blind spot: the manyflow hot path
    // runs exclusively on the zero-copy side.
    let mut checked = 0usize;
    for (name, _) in good_entries() {
        let bytes = read_corpus_file(name);
        let (repr, payload) = MmtRepr::decode_from(&bytes)
            .unwrap_or_else(|e| panic!("{name}: decode_from failed: {e:?}"));
        let via_parse = MmtRepr::parse(&bytes).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        assert_eq!(repr, via_parse, "{name}: decode_from disagreed with parse");
        assert_eq!(
            payload,
            &bytes[repr.header_len()..],
            "{name}: borrowed payload must alias the input tail"
        );
        // Encode back into a caller-owned buffer (arena-slot style):
        // header written in place, payload region untouched by the
        // encoder, and the result byte-exact vs the allocating emitter.
        let mut buf = vec![0u8; bytes.len()];
        buf[repr.header_len()..].copy_from_slice(payload);
        let written = repr
            .encode_into(&mut buf)
            .unwrap_or_else(|e| panic!("{name}: encode_into failed: {e:?}"));
        assert_eq!(written, repr.header_len(), "{name}: reported header length");
        assert_eq!(
            buf,
            repr.emit_with_payload(payload),
            "{name}: zero-copy emit diverged from allocating emit"
        );
        assert_eq!(buf, bytes, "{name}: zero-copy round trip not byte-exact");
        checked += 1;
    }
    assert_eq!(
        checked,
        good_entries().len(),
        "every golden frame must pass through the zero-copy paths"
    );
}

#[test]
fn corpus_malformed_frames_err_through_zero_copy_decode() {
    for (name, _) in bad_entries() {
        let bytes = read_corpus_file(name);
        let decoded = MmtRepr::decode_from(&bytes);
        if name.starts_with("bad_ctrl_") {
            // Control bodies are opaque at the header layer; the header
            // decode may succeed, but never panic, and the payload must
            // stay in bounds.
            if let Ok((repr, payload)) = decoded {
                assert_eq!(payload.len(), bytes.len() - repr.header_len(), "{name}");
            }
        } else {
            assert!(
                decoded.is_err(),
                "{name}: malformed frame decoded cleanly through decode_from"
            );
        }
    }
}

#[test]
fn encode_into_short_buffer_is_err_not_panic() {
    for (name, bytes) in good_entries() {
        let repr = match MmtRepr::parse(&bytes) {
            Ok(r) => r,
            Err(_) => continue,
        };
        // Every strictly-short length, including zero: typed error out,
        // never a slice panic, and the buffer is never written past what
        // the caller handed over (trivially true — it's safe Rust — but
        // the Err contract is what the arena hot path leans on).
        for short in [0, 1, repr.header_len().saturating_sub(1)] {
            let mut buf = vec![0u8; short];
            assert!(
                repr.encode_into(&mut buf).is_err(),
                "{name}: encode_into must Err into a {short}-byte buffer"
            );
        }
    }
}

/// Regenerate the corpus from the canonical descriptions. Run explicitly:
/// `cargo test --test wire_corpus -- --ignored regenerate_corpus`.
#[test]
#[ignore = "writes tests/corpus; run explicitly to regenerate"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, bytes) in good_entries().into_iter().chain(bad_entries()) {
        std::fs::write(dir.join(name), bytes).expect("write corpus file");
    }
}
