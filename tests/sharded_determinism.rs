//! Differential determinism: a sharded many-flow run must be
//! byte-identical to the serial run of the same seed — same merged
//! Prometheus export, same trace digest — for every shard count. This is
//! the contract that lets the scale harness use threads at all: sharding
//! is a performance knob, never an observable one.

use mmt::netsim::ShardedSim;
use mmt::pilot::manyflow::{self, ManyFlowConfig};
use mmt::telemetry::prometheus;

/// Render the merged registry and digest for one (seed, shards) point.
fn run_point(seed: u64, shards: usize) -> (String, u64, u64) {
    let cfg = ManyFlowConfig::quick(seed).with_shards(shards);
    let report = manyflow::run(&cfg);
    (
        prometheus::render(&report.shard.registry),
        report.shard.trace_digest,
        report.shard.packets,
    )
}

#[test]
fn sharded_matches_serial_for_eight_seeds() {
    for seed in 1..=8u64 {
        let (serial_prom, serial_digest, serial_packets) = run_point(seed, 1);
        assert!(!serial_prom.is_empty());
        assert!(serial_packets > 0, "fleet must deliver packets");
        for shards in [2usize, 4] {
            let (prom, digest, packets) = run_point(seed, shards);
            assert_eq!(
                serial_prom, prom,
                "seed {seed}: {shards}-shard Prometheus export diverged from serial"
            );
            assert_eq!(
                serial_digest, digest,
                "seed {seed}: {shards}-shard trace digest diverged from serial"
            );
            assert_eq!(serial_packets, packets, "seed {seed}: packet counts");
        }
    }
}

#[test]
fn worker_thread_layout_is_unobservable() {
    // Same groups, same shard count — only the worker-thread count
    // differs (forced past the host-core clamp). Every output must agree:
    // thread scheduling may reorder completion, never results.
    let cfg = ManyFlowConfig::quick(3).with_shards(4);
    let groups = cfg.dtns;
    let run = |workers: usize| {
        let sharded = ShardedSim::new(cfg.seed, cfg.shards).with_workers(workers);
        let report = sharded.run(groups, |g, gs| manyflow::run_group(&cfg, g, gs));
        (
            prometheus::render(&report.registry),
            report.trace_digest,
            report.shard_loads.clone(),
        )
    };
    let (prom1, digest1, loads1) = run(1);
    for workers in [2usize, 4, 8] {
        let (prom, digest, loads) = run(workers);
        assert_eq!(prom1, prom, "{workers} workers changed the metrics");
        assert_eq!(digest1, digest, "{workers} workers changed the digest");
        assert_eq!(loads1, loads, "{workers} workers changed shard loads");
    }
}

#[test]
fn distinct_seeds_produce_distinct_streams() {
    // Differential sanity in the other direction: the digest actually
    // depends on the seed (a constant digest would also pass equality).
    let (_, d1, _) = run_point(101, 2);
    let (_, d2, _) = run_point(102, 2);
    assert_ne!(d1, d2, "different seeds must not collide on digest");
}

#[test]
fn group_seeds_are_shard_independent() {
    // Group seeds derive from (root_seed, group) only; shard count is not
    // an input. Spot-check the pure function the whole scheme rests on.
    for shards in [1usize, 2, 4, 8] {
        let sim = ShardedSim::new(7, shards);
        assert_eq!(sim.group_seed(0), ShardedSim::new(7, 1).group_seed(0));
        assert_eq!(sim.group_seed(5), ShardedSim::new(7, 1).group_seed(5));
    }
}
