//! Differential determinism: a sharded many-flow run must be
//! byte-identical to the serial run of the same seed — same merged
//! Prometheus export, same trace digest — for every shard count. This is
//! the contract that lets the scale harness use threads at all: sharding
//! is a performance knob, never an observable one.

use mmt::netsim::{ShardedSim, Time};
use mmt::pilot::manyflow::{self, ManyFlowConfig};
use mmt::pilot::{Pilot, PilotConfig};
use mmt::telemetry::{prometheus, series};

/// Render the merged registry and digest for one (seed, shards) point.
fn run_point(seed: u64, shards: usize) -> (String, u64, u64) {
    let cfg = ManyFlowConfig::quick(seed).with_shards(shards);
    let report = manyflow::run(&cfg);
    (
        prometheus::render(&report.shard.registry),
        report.shard.trace_digest,
        report.shard.packets,
    )
}

#[test]
fn sharded_matches_serial_for_eight_seeds() {
    for seed in 1..=8u64 {
        let (serial_prom, serial_digest, serial_packets) = run_point(seed, 1);
        assert!(!serial_prom.is_empty());
        assert!(serial_packets > 0, "fleet must deliver packets");
        for shards in [2usize, 4] {
            let (prom, digest, packets) = run_point(seed, shards);
            assert_eq!(
                serial_prom, prom,
                "seed {seed}: {shards}-shard Prometheus export diverged from serial"
            );
            assert_eq!(
                serial_digest, digest,
                "seed {seed}: {shards}-shard trace digest diverged from serial"
            );
            assert_eq!(serial_packets, packets, "seed {seed}: packet counts");
        }
    }
}

#[test]
fn worker_thread_layout_is_unobservable() {
    // Same groups, same shard count — only the worker-thread count
    // differs (forced past the host-core clamp). Every output must agree:
    // thread scheduling may reorder completion, never results.
    let cfg = ManyFlowConfig::quick(3).with_shards(4);
    let groups = cfg.dtns;
    let run = |workers: usize| {
        let sharded = ShardedSim::new(cfg.seed, cfg.shards).with_workers(workers);
        let report = sharded.run(groups, |g, gs| manyflow::run_group(&cfg, g, gs));
        (
            prometheus::render(&report.registry),
            report.trace_digest,
            report.shard_loads.clone(),
        )
    };
    let (prom1, digest1, loads1) = run(1);
    for workers in [2usize, 4, 8] {
        let (prom, digest, loads) = run(workers);
        assert_eq!(prom1, prom, "{workers} workers changed the metrics");
        assert_eq!(digest1, digest, "{workers} workers changed the digest");
        assert_eq!(loads1, loads, "{workers} workers changed shard loads");
    }
}

#[test]
fn distinct_seeds_produce_distinct_streams() {
    // Differential sanity in the other direction: the digest actually
    // depends on the seed (a constant digest would also pass equality).
    let (_, d1, _) = run_point(101, 2);
    let (_, d2, _) = run_point(102, 2);
    assert_ne!(d1, d2, "different seeds must not collide on digest");
}

/// Render the merged time-series JSONL for one (seed, shards, workers)
/// point, sampling every 100 µs of virtual time.
fn series_point(seed: u64, shards: usize, workers: usize) -> String {
    let cfg = ManyFlowConfig::quick(seed)
        .with_shards(shards)
        .with_series(Time::from_micros(100));
    let groups = cfg.dtns;
    let sharded = ShardedSim::new(cfg.seed, cfg.shards).with_workers(workers);
    let report = sharded.run(groups, |g, gs| manyflow::run_group(&cfg, g, gs));
    series::to_jsonl(&report.series)
}

#[test]
fn series_jsonl_is_byte_identical_across_shards_and_workers() {
    // The streaming sampler is part of the determinism contract: the
    // per-interval JSONL must be byte-identical for every shard count AND
    // every forced worker layout, for each of eight seeds. Virtual-time
    // boundaries are sampled per group and merged in ascending group
    // order, so neither partitioning nor thread scheduling may show.
    for seed in 1..=8u64 {
        let baseline = series_point(seed, 1, 1);
        assert!(!baseline.is_empty(), "seed {seed}: sampler emitted nothing");
        assert!(
            baseline.starts_with("{\"t_ns\":0,"),
            "seed {seed}: first row must be the t=0 boundary"
        );
        for shards in [1usize, 2, 4] {
            for workers in [1usize, 2, 4] {
                let got = series_point(seed, shards, workers);
                assert_eq!(
                    baseline, got,
                    "seed {seed}: series diverged at {shards} shards / {workers} workers"
                );
            }
        }
    }
}

#[test]
fn flight_recorder_dump_is_reproducible() {
    // The dump a crash trips must be a pure function of the config: two
    // identical runs produce byte-equal flight files (header + ring).
    let dump = || {
        let mut cfg = PilotConfig::default_run();
        cfg.message_count = 200;
        cfg.seed = 7;
        cfg.crash_node = Some("dtn1".to_string());
        cfg.crash_at = Time::from_millis(6);
        let mut pilot = Pilot::build(cfg);
        pilot.enable_trace_bounded(512);
        pilot.run(Time::from_secs(300));
        pilot.flight_dump("node_crash")
    };
    let first = dump();
    let second = dump();
    assert_eq!(first, second, "flight dump must be reproducible");
    let header = first.lines().next().expect("dump has a header line");
    assert!(
        header.starts_with("{\"flight\":\"v1\",\"reason\":\"node_crash\",\"seed\":7,"),
        "unexpected header: {header}"
    );
    assert!(
        first.lines().count() > 1,
        "dump must carry trace records after the header"
    );
}

#[test]
fn group_seeds_are_shard_independent() {
    // Group seeds derive from (root_seed, group) only; shard count is not
    // an input. Spot-check the pure function the whole scheme rests on.
    for shards in [1usize, 2, 4, 8] {
        let sim = ShardedSim::new(7, shards);
        assert_eq!(sim.group_seed(0), ShardedSim::new(7, 1).group_seed(0));
        assert_eq!(sim.group_seed(5), ShardedSim::new(7, 1).group_seed(5));
    }
}
