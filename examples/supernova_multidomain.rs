//! The multi-domain supernova early warning: DUNE → Vera Rubin (Req 10,
//! experiment E6).
//!
//! A core-collapse supernova floods DUNE with neutrinos minutes-to-days
//! before the photons reach any telescope. This example runs the whole
//! chain: synthetic LArTPC burst → sliding-window trigger → pointing
//! alert across two WAN hops — and checks the alert beats the photons by
//! a wide margin.
//!
//! ```sh
//! cargo run --release --example supernova_multidomain
//! ```

use mmt::daq::supernova::Progenitor;
use mmt::pilot::experiments::supernova;

fn main() {
    println!("=== DUNE -> Vera Rubin supernova early warning (E6) ===\n");
    let result = supernova::run(2026);

    println!("burst onset (experiment time) : {}", result.burst_start);
    println!(
        "DUNE trigger fired            : {} (+{} after onset)",
        result.detected_at,
        result.detected_at - result.burst_start
    );
    println!("delivery budget (1% of lag)   : {}", result.budget);
    println!();
    println!(
        "MMT alert (in-network dup)    : {}  -> within budget: {}",
        result.mmt_alert_latency, result.mmt_within_budget
    );
    println!(
        "staged path (TCP + DTN store) : {}  -> within budget: {}",
        result.staged_alert_latency, result.staged_within_budget
    );
    println!();
    println!("photon-lag context (Kistler et al. [36]):");
    for p in [
        Progenitor::CompactBlueSupergiant,
        Progenitor::RedSupergiant,
        Progenitor::ExtendedEnvelope,
    ] {
        println!(
            "  {:?}: photons arrive ~{} after the neutrinos",
            p,
            p.photon_lag()
        );
    }
    assert!(result.mmt_within_budget);
}
