//! Watch a single datagram change shape as it crosses the network — the
//! "shape-shifting" of the title, at header level.
//!
//! A mode-0 sensor datagram is passed through each mode-transition
//! program in turn (DAQ→WAN border, WAN transit, destination check,
//! campus downgrade) and its header is printed after every hop.
//!
//! ```sh
//! cargo run --release --example mode_transitions
//! ```

use mmt::dataplane::action::Intrinsics;
use mmt::dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
use mmt::dataplane::programs::{self, BorderConfig};
use mmt::wire::mmt::{ExperimentId, Features, MmtRepr};
use mmt::wire::{EthernetAddress, Ipv4Address};

fn show(stage: &str, pkt: &ParsedPacket) {
    let repr = pkt.mmt_repr().expect("valid MMT frame");
    println!(
        "{stage:<28} header {:>3} B  features [{}]",
        repr.header_len(),
        repr.features
    );
    if let Some(seq) = repr.sequence() {
        print!("{:28} seq={seq}", "");
        if let Some(r) = repr.retransmit() {
            print!("  retransmit from {}:{}", r.source, r.port);
        }
        if let Some(t) = repr.timeliness() {
            print!("  deadline={}ns -> notify {}", t.deadline_ns, t.notify);
        }
        if let Some(a) = repr.age() {
            print!("  age={}ns aged={}", a.age_ns, a.aged);
        }
        println!();
    }
}

fn main() {
    println!("=== one datagram, four networks, four shapes ===\n");
    let exp = ExperimentId::new(2, 1); // DUNE, slice 1
    let sensor_frame = build_eth_mmt_frame(
        EthernetAddress([2, 0, 0, 0, 0, 1]),
        EthernetAddress([2, 0, 0, 0, 0, 2]),
        &MmtRepr::data(exp),
        b"one trigger record's worth of ADC samples...",
    );
    let mut pkt = ParsedPacket::parse(sensor_frame, 0);
    show("at the sensor (mode 0/1)", &pkt);

    // DAQ -> WAN border: the mode-2 upgrade.
    let mut border = programs::daq_to_wan_border(BorderConfig {
        daq_port: 0,
        wan_port: 1,
        retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
        deadline_budget_ns: 50_000_000,
        notify_addr: Ipv4Address::new(10, 0, 0, 1),
        priority_class: Some(2),
    });
    let t0 = 1_000_000; // packet created at t0, processed 40 µs later
    border.process(
        &mut pkt,
        Intrinsics {
            now_ns: t0 + 40_000,
            created_at_ns: t0,
        },
    );
    show("after DTN 1 (mode 2, WAN)", &pkt);

    // Mid-WAN transit: age update 10 ms later.
    let mut transit = programs::wan_transit(0, 1, 30_000_000);
    transit.process(
        &mut pkt,
        Intrinsics {
            now_ns: t0 + 10_040_000,
            created_at_ns: t0,
        },
    );
    show("after Tofino2 (age updated)", &pkt);

    // Destination: timeliness check (on time here).
    let mut check = programs::destination_check(0, 1, 2);
    let d = check.process(
        &mut pkt,
        Intrinsics {
            now_ns: t0 + 20_040_000,
            created_at_ns: t0,
        },
    );
    show("after DTN 2 NIC (mode 3)", &pkt);
    println!(
        "{:28} deadline notifications emitted: {}",
        "",
        d.emitted.len()
    );

    // Campus: strip the WAN-only gear.
    let mut down = programs::downgrade_border(
        0,
        1,
        Features::RETRANSMIT | Features::TIMELINESS | Features::ACK_NAK,
    );
    pkt.ingress_port = 0;
    down.process(
        &mut pkt,
        Intrinsics {
            now_ns: t0 + 20_080_000,
            created_at_ns: t0,
        },
    );
    show("after campus edge (downgrade)", &pkt);

    println!("\npayload survived every transition: {:?}", {
        let view = pkt.mmt().unwrap();
        String::from_utf8_lossy(view.payload()).into_owned()
    });
}
