//! Vera Rubin alert distribution: in-network duplication vs today's
//! store-and-forward unicast (§2.1, experiment E5).
//!
//! The telescope's alert stream bursts to 5.4 Gb/s after each exposure
//! and must reach researchers "at the time-scale of milliseconds"
//! (§4.1). This example measures when the *last* of N subscribers holds
//! an alert under both distribution schemes, then shows the alert-burst
//! workload itself.
//!
//! ```sh
//! cargo run --release --example vera_rubin_alerts
//! ```

use mmt::daq::catalog;
use mmt::daq::workload::{offered_bps, BurstFlow};
use mmt::netsim::Time;
use mmt::pilot::experiments::alerts;

fn main() {
    println!("=== Vera Rubin alert fan-out (E5) ===\n");
    println!(
        "{:<10} {:>28} {:>28}",
        "subs", "MMT in-network dup (last)", "store-and-forward (last)"
    );
    for n in [1usize, 4, 16, 64] {
        let mmt = alerts::run_mmt(n);
        let uni = alerts::run_unicast(n);
        println!(
            "{:<10} {:>28} {:>28}",
            n,
            format!("{}", mmt.last),
            format!("{}", uni.last)
        );
    }

    println!("\n=== the alert workload itself (§2.1) ===");
    let mut flow = BurstFlow::vera_rubin_alerts(Time::ZERO);
    let msgs = flow.take_until(Time::from_secs(1));
    let burst_rate = offered_bps(&msgs, Time::from_secs(1));
    println!(
        "burst: {} alerts of 8 KiB in the first second -> {:.2} Gb/s (paper: 5.4 Gb/s)",
        msgs.len(),
        burst_rate / 1e9
    );
    println!(
        "alongside the nightly bulk capture: {} TB at {} aggregate",
        catalog::RUBIN_NIGHTLY_BYTES / 1_000_000_000_000,
        catalog::VERA_RUBIN.daq_rate
    );
}
