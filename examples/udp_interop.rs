//! Real-socket interop: the MMT wire format over actual UDP.
//!
//! Everything else in this repository runs in simulated time; this
//! example shows the wire format is just bytes — it round-trips over a
//! real OS socket (MMT-in-UDP tunnelling, the deployment the paper
//! expects on networks that drop unknown EtherTypes/IP protocols).
//!
//! ```sh
//! cargo run --release --example udp_interop
//! ```

use mmt::wire::mmt::{ControlRepr, ExperimentId, MmtRepr, NakRange, NakRepr};
use mmt::wire::udp::MMT_TUNNEL_PORT;
use mmt::wire::Ipv4Address;
use std::net::UdpSocket;

fn main() -> std::io::Result<()> {
    let receiver = UdpSocket::bind("127.0.0.1:0")?;
    let sender = UdpSocket::bind("127.0.0.1:0")?;
    let dst = receiver.local_addr()?;
    println!("=== MMT over real UDP (tunnel port would be {MMT_TUNNEL_PORT}) ===\n");

    // A mode-2 data datagram, as DTN 1 would emit onto the WAN.
    let exp = ExperimentId::new(2, 1);
    let data = MmtRepr::data(exp)
        .with_sequence(7)
        .with_retransmit(Ipv4Address::new(10, 0, 0, 5), 47_000)
        .with_age(12_345, false);
    let frame = data.emit_with_payload(b"one trigger record");
    sender.send_to(&frame, dst)?;

    // And a NAK control message coming back.
    let nak = ControlRepr::Nak(NakRepr {
        requester: Ipv4Address::new(10, 0, 0, 8),
        requester_port: 47_000,
        ranges: vec![NakRange { first: 3, last: 5 }],
    })
    .emit_packet(exp);
    sender.send_to(&nak, dst)?;

    let mut buf = [0u8; 2048];
    for _ in 0..2 {
        let (n, _) = receiver.recv_from(&mut buf)?;
        let repr = MmtRepr::parse(&buf[..n]).expect("valid MMT datagram");
        if repr.is_control() {
            let (exp, ctrl) = ControlRepr::parse_packet(&buf[..n]).expect("valid control");
            println!("control from {exp}: {ctrl:?}");
        } else {
            let payload = &buf[repr.header_len()..n];
            println!(
                "data from {}: seq={:?} age={:?}ns retransmit-from={:?} payload={:?}",
                repr.experiment,
                repr.sequence(),
                repr.age().map(|a| a.age_ns),
                repr.retransmit().map(|r| r.source.to_string()),
                String::from_utf8_lossy(payload)
            );
        }
    }
    println!("\nwire format round-tripped over a real socket.");
    Ok(())
}
