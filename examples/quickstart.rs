//! Quickstart: run the paper's pilot study (Fig. 4) end to end.
//!
//! Builds the chain  detector → DTN 1 → Tofino2 → WAN → DTN 2,  streams
//! 2 000 DUNE-sized messages across a lossy 10 ms WAN, and prints what the
//! multi-modal machinery did: the mode upgrade at DTN 1, age tracking at
//! the Tofino element, NAK-based recovery from the nearest buffer, and the
//! timeliness check at the destination.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mmt::netsim::Time;
use mmt::pilot::{Pilot, PilotConfig};

fn main() {
    let config = PilotConfig::default_run();
    println!("=== MMT pilot study (Fig. 4) ===");
    println!(
        "stream: {} messages x {} B, WAN rtt {}, loss {:?}",
        config.message_count, config.message_len, config.wan_rtt, config.wan_loss
    );

    let mut pilot = Pilot::build(config);
    pilot.run(Time::from_secs(60));
    let mut report = pilot.report();

    println!("\n--- what the network did ---");
    println!(
        "sensor        emitted {} mode-0 datagrams",
        report.sender.sent
    );
    println!(
        "DTN 1         upgraded+forwarded {} (mode 1 -> mode 2), retains {} for retransmission",
        report.buffer.forwarded, report.buffer.stored
    );
    println!(
        "Tofino2       updated age on {} packets in flight",
        report.tofino.forwarded
    );
    println!(
        "WAN           corrupted {} packets",
        report.wan_corruption_losses
    );
    println!(
        "DTN 2 NIC     ran the mode-3 timeliness check on {} packets",
        report.dtn2_switch.forwarded
    );

    println!("\n--- recovery (hop-by-hop, from DTN 1, not the source) ---");
    println!("receiver NAKs sent      : {}", report.receiver.naks_sent);
    println!("DTN 1 retransmissions   : {}", report.buffer.retransmitted);
    println!("sequences recovered     : {}", report.receiver.recovered);
    println!("sequences lost for good : {}", report.receiver.lost);

    println!("\n--- delivery ---");
    println!(
        "delivered {} / {} messages ({} duplicates suppressed)",
        report.receiver.delivered, report.sender.sent, report.receiver.duplicates
    );
    if let (Some(p50), Some(p99)) = (report.latency.median(), report.latency.quantile(0.99)) {
        println!("latency p50 {p50}  p99 {p99}");
    }
    println!(
        "aged deliveries: {}   deadline notifications at source: {}",
        report.receiver.aged_deliveries, report.sender.deadline_notifications
    );
    match report.completed_at {
        Some(t) => println!("stream complete at {t}"),
        None => println!("stream INCOMPLETE"),
    }
    assert!(pilot.is_complete(), "pilot must deliver everything");
}
