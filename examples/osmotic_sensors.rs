//! Osmotic sensors (§6, challenge 3): a 200-station GPS-scintillation
//! array trickling readings over lossy cell backhaul, integrated into the
//! research WAN through the same MMT border machinery the big
//! instruments use.
//!
//! ```sh
//! cargo run --release --example osmotic_sensors
//! ```

use mmt::daq::osmotic::SensorField;
use mmt::netsim::Time;
use mmt::pilot::experiments::osmotic;
use mmt::wire::mmt::ExperimentId;

fn main() {
    println!("=== osmotic sensors -> research infrastructure (E10) ===\n");
    let field = SensorField::scintillation_array(ExperimentId::new(6, 0));
    println!(
        "field: {} sensors x {} B every {}  (aggregate {:.2} Mb/s — ten orders below DUNE)",
        field.sensors,
        field.reading_bytes,
        field.report_interval,
        field.offered_bps() / 1e6
    );

    let r = osmotic::run(Time::from_secs(30), 5);
    println!("\nreadings produced            : {}", r.produced);
    println!(
        "lost on cell backhaul        : {} (mode 0: sensors do not buffer)",
        r.lost_on_backhaul
    );
    println!("entered the WAN (mode 2)     : {}", r.entered_wan);
    println!("recovered by NAK on the WAN  : {}", r.recovered_on_wan);
    println!("delivered to the archive     : {}", r.delivered);
    println!(
        "WAN delivery ratio           : {:.2}% — the gateway border makes the\n\
         trickles exactly as reliable as the 100 Tb/s instruments' streams",
        r.wan_delivery_ratio * 100.0
    );
    assert!((r.wan_delivery_ratio - 1.0).abs() < 1e-9);
}
